"""Property tests: batched observation is equivalent to per-op observation.

The monitor's ``observe_batch`` is the hot-path ingest (one vectorized
attribution pass per access record); ``observe`` and ``observe_workload``
are thin wrappers over it.  These tests pin the contract the engine relies
on:

* per-chunk **counts** are byte-identical between per-operation dispatch
  (``engine.execute`` one op at a time) and batched dispatch
  (``engine.execute_batch``), including the per-element expansion of the
  ``Multi*`` forms and duplicate runs straddling chunk boundaries;
* the bounded **samples** retain identical sliding windows -- runs keep
  submission order within a record, and paired update records interleave
  source_i/target_i exactly as per-pair dispatch does, so the windows
  agree element-for-element even when a run overflows the sample limit;
* single-record logs ingested via ``observe_batch`` match element-wise
  ``observe`` calls exactly, truncation included.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import WorkloadMonitor
from repro.storage.access_log import AccessLog
from repro.storage.engine import StorageEngine
from repro.storage.errors import ValueNotFoundError
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.operations import (
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    PointQuery,
    RangeQuery,
    Update,
)

KEY_DOMAIN = 64


def keys_strategy():
    """Key multisets with duplicate runs likely to straddle chunk bounds."""
    return st.lists(
        st.integers(min_value=0, max_value=KEY_DOMAIN),
        min_size=8,
        max_size=48,
    )


def operations_strategy():
    key = st.integers(min_value=0, max_value=KEY_DOMAIN)
    bounds = st.tuples(key, key).map(lambda p: (min(p), max(p)))
    point = st.builds(PointQuery, key=key)
    range_query = bounds.map(lambda p: RangeQuery(low=p[0], high=p[1]))
    insert = st.builds(Insert, key=key)
    delete = st.builds(Delete, key=key)
    update = st.builds(Update, old_key=key, new_key=key)
    multi_point = st.lists(key, min_size=0, max_size=6).map(
        lambda ks: MultiPointQuery(keys=tuple(ks))
    )
    multi_range = st.lists(bounds, min_size=0, max_size=4).map(
        lambda bs: MultiRangeCount(bounds=tuple(bs))
    )
    multi_insert = st.lists(key, min_size=0, max_size=6).map(
        lambda ks: MultiInsert(keys=tuple(ks))
    )
    multi_delete = st.lists(key, min_size=0, max_size=6).map(
        lambda ks: MultiDelete(keys=tuple(ks))
    )
    multi_update = st.lists(
        st.tuples(key, key), min_size=0, max_size=4
    ).map(lambda ps: MultiUpdate(pairs=tuple(ps)))
    return st.lists(
        st.one_of(
            point,
            range_query,
            insert,
            delete,
            update,
            multi_point,
            multi_range,
            multi_insert,
            multi_delete,
            multi_update,
        ),
        min_size=1,
        max_size=24,
    )


def make_table(table_keys) -> Table:
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=4, block_values=8)
    # A small chunk size forces several chunks and lets duplicate runs in
    # the drawn key multiset straddle the chunk boundaries.
    return Table(
        np.asarray(table_keys, dtype=np.int64),
        chunk_size=8,
        chunk_builder=layout_chunk_builder(spec),
        block_values=8,
    )


def run_per_op(table_keys, operations, sample_limit):
    monitor = WorkloadMonitor(sample_limit=sample_limit)
    engine = StorageEngine(make_table(table_keys), monitor=monitor)
    for operation in operations:
        try:
            engine.execute(operation)
        except ValueNotFoundError:
            pass
    return monitor


def run_batched(table_keys, operations, sample_limit):
    monitor = WorkloadMonitor(sample_limit=sample_limit)
    engine = StorageEngine(make_table(table_keys), monitor=monitor)
    engine.execute_batch(operations)
    return monitor


def counts_by_chunk(monitor):
    return {
        chunk: monitor.operation_counts(chunk)
        for chunk in monitor.observed_chunks()
    }


def sample_sequences(monitor):
    return {
        chunk: monitor.recorded_workload(chunk).operations
        for chunk in monitor.observed_chunks()
    }


class TestEngineDispatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(table_keys=keys_strategy(), operations=operations_strategy())
    def test_counts_identical_per_op_vs_batched(self, table_keys, operations):
        per_op = run_per_op(table_keys, operations, sample_limit=4_096)
        batched = run_batched(table_keys, operations, sample_limit=4_096)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)

    @settings(max_examples=60, deadline=None)
    @given(table_keys=keys_strategy(), operations=operations_strategy())
    def test_samples_identical_per_op_vs_batched(self, table_keys, operations):
        # Records preserve submission order and paired update records
        # interleave source/target per pair, so the retained windows agree
        # element-for-element between the two dispatch paths.
        per_op = run_per_op(table_keys, operations, sample_limit=4_096)
        batched = run_batched(table_keys, operations, sample_limit=4_096)
        assert sample_sequences(per_op) == sample_sequences(batched)

    @settings(max_examples=40, deadline=None)
    @given(
        table_keys=keys_strategy(),
        operations=operations_strategy(),
        limit=st.integers(min_value=0, max_value=7),
    )
    def test_truncated_samples_match(self, table_keys, operations, limit):
        # Sliding-window truncation keeps the same most-recent entries on
        # both paths, so even tiny limits yield identical windows.
        per_op = run_per_op(table_keys, operations, sample_limit=limit)
        batched = run_batched(table_keys, operations, sample_limit=limit)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)
        assert sample_sequences(per_op) == sample_sequences(batched)
        for chunk in per_op.observed_chunks():
            assert len(per_op.recorded_workload(chunk)) <= limit

    @settings(max_examples=60, deadline=None)
    @given(table_keys=keys_strategy(), operations=operations_strategy())
    def test_observe_workload_matches_batched_dispatch(
        self, table_keys, operations
    ):
        # Offline seeding must attribute exactly what executing the same
        # workload through the batch executor would (write ops mutate the
        # table but never its routing fences, so attribution agrees).
        batched = run_batched(table_keys, operations, sample_limit=512)
        seeded = WorkloadMonitor(sample_limit=512)
        seeded.observe_workload(make_table(table_keys), operations)
        assert counts_by_chunk(seeded) == counts_by_chunk(batched)


class TestSingleRecordEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        table_keys=keys_strategy(),
        record_keys=st.lists(
            st.integers(min_value=0, max_value=KEY_DOMAIN),
            min_size=1,
            max_size=20,
        ),
        kind=st.sampled_from(
            ["point_query", "insert", "delete", "update_source", "update_target"]
        ),
        limit=st.integers(min_value=0, max_value=8),
    )
    def test_point_record_matches_elementwise_observe(
        self, table_keys, record_keys, kind, limit
    ):
        table = make_table(table_keys)
        per_op = WorkloadMonitor(sample_limit=limit)
        for key in record_keys:
            per_op.observe(table, kind, key)
        batched = WorkloadMonitor(sample_limit=limit)
        log = AccessLog()
        log.record(kind, record_keys)
        batched.observe_batch(table, log)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)
        for chunk in per_op.observed_chunks():
            # Single-kind records preserve submission order, so the
            # retained windows are identical sequences, truncation and all.
            assert (
                per_op.recorded_workload(chunk).operations
                == batched.recorded_workload(chunk).operations
            )

    @settings(max_examples=40, deadline=None)
    @given(
        table_keys=keys_strategy(),
        record_bounds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=KEY_DOMAIN),
                st.integers(min_value=0, max_value=KEY_DOMAIN),
            ).map(lambda p: (min(p), max(p))),
            min_size=1,
            max_size=12,
        ),
        kind=st.sampled_from(["range_count", "range_sum"]),
        limit=st.integers(min_value=0, max_value=8),
    )
    def test_range_record_matches_elementwise_observe(
        self, table_keys, record_bounds, kind, limit
    ):
        table = make_table(table_keys)
        per_op = WorkloadMonitor(sample_limit=limit)
        for low, high in record_bounds:
            per_op.observe(table, kind, low, high)
        batched = WorkloadMonitor(sample_limit=limit)
        log = AccessLog()
        log.record(
            kind,
            [low for low, _ in record_bounds],
            [high for _, high in record_bounds],
        )
        batched.observe_batch(table, log)
        assert counts_by_chunk(per_op) == counts_by_chunk(batched)
        for chunk in per_op.observed_chunks():
            assert (
                per_op.recorded_workload(chunk).operations
                == batched.recorded_workload(chunk).operations
            )
