"""Tests for SLA constraints, ghost allocation, the optimizer facade and the planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import InfeasibleSLAError, SLAConstraints, StructuralBounds
from repro.core.cost_model import boundaries_to_vector
from repro.core.frequency_model import FrequencyModel, learn_from_workload
from repro.core.ghost_allocation import (
    allocate_ghost_values,
    data_movement_per_block,
    data_movement_per_partition,
)
from repro.core.optimizer import LayoutSolution, SolverBackend, optimize_layout
from repro.core.planner import CasperPlanner
from repro.storage.cost_accounting import CostConstants, constants_for_block_values
from repro.workload.operations import Insert, PointQuery, RangeQuery, Update, Workload


def constants():
    return CostConstants(random_read=100, random_write=100, seq_read=500, seq_write=500)


class TestSLAConstraints:
    def test_update_sla_limits_partitions(self):
        sla = SLAConstraints(update_sla_ns=2_000)
        bounds = sla.to_bounds(64, constants())
        # 2000 / (100 + 100) - 1 = 9 partitions.
        assert bounds.max_partitions == 9
        assert bounds.max_partition_blocks is None

    def test_read_sla_limits_partition_width(self):
        sla = SLAConstraints(read_sla_ns=2_100)
        bounds = sla.to_bounds(64, constants())
        # (2100 - 100) / 500 = 4 blocks.
        assert bounds.max_partition_blocks == 4
        assert bounds.max_partitions is None

    def test_update_sla_infeasible(self):
        with pytest.raises(InfeasibleSLAError):
            SLAConstraints(update_sla_ns=150).to_bounds(64, constants())

    def test_read_sla_infeasible(self):
        with pytest.raises(InfeasibleSLAError):
            SLAConstraints(read_sla_ns=50).to_bounds(64, constants())

    def test_jointly_infeasible(self):
        sla = SLAConstraints(update_sla_ns=600, read_sla_ns=600)
        with pytest.raises(InfeasibleSLAError):
            sla.to_bounds(64, constants())

    def test_no_slas_yield_empty_bounds(self):
        bounds = SLAConstraints().to_bounds(64, constants())
        assert bounds == StructuralBounds()

    def test_max_insert_latency(self):
        sla = SLAConstraints()
        assert sla.max_insert_latency_ns(9, constants()) == pytest.approx(2_000)


class TestGhostAllocation:
    def test_data_movement_concentrated_where_inserts_ripple(self):
        model = FrequencyModel(8)
        model.ins[:] = [4, 0, 0, 0, 0, 0, 0, 4]
        vector = np.ones(8, dtype=bool)
        movement = data_movement_per_block(model, vector)
        # Early inserts ripple through more partitions than late ones.
        assert movement[0] > movement[7]

    def test_partition_aggregation(self):
        model = FrequencyModel(8)
        model.ins[:] = 1
        vector = boundaries_to_vector(8, [4, 8])
        per_partition = data_movement_per_partition(model, vector)
        assert per_partition.shape == (2,)
        assert per_partition[0] > per_partition[1]

    def test_allocation_sums_to_budget(self):
        model = FrequencyModel(8)
        model.ins[:] = [5, 1, 1, 1, 1, 1, 1, 5]
        vector = boundaries_to_vector(8, [2, 4, 6, 8])
        allocation = allocate_ghost_values(model, vector, 100)
        assert allocation.per_partition.sum() == 100
        assert allocation.num_partitions == 4

    def test_allocation_prefers_update_targets(self):
        model = FrequencyModel(8)
        model.utf[:] = [0, 0, 0, 0, 0, 0, 10, 0]
        model.ins[:] = [1, 0, 0, 0, 0, 0, 0, 0]
        vector = boundaries_to_vector(8, [4, 8])
        allocation = allocate_ghost_values(model, vector, 10)
        assert allocation.per_partition[1] > 0

    def test_negative_budget_rejected(self):
        model = FrequencyModel(4)
        with pytest.raises(ValueError):
            allocate_ghost_values(model, np.ones(4, dtype=bool), -1)


class TestOptimizerFacade:
    def make_model(self):
        model = FrequencyModel(16)
        model.pq[:] = 2
        model.ins[:8] = 3
        return model

    def test_solution_offsets_cover_chunk(self):
        solution = optimize_layout(
            self.make_model(), chunk_size=16 * 64, block_values=64
        )
        assert isinstance(solution, LayoutSolution)
        offsets = solution.boundary_offsets()
        assert offsets[-1] == 16 * 64
        assert np.all(np.diff(offsets) > 0)

    def test_solver_backends_agree(self):
        model = FrequencyModel(10)
        model.pq[:] = 1
        model.ins[:5] = 2
        dp = optimize_layout(model, chunk_size=640, block_values=64, solver="dp")
        bip = optimize_layout(model, chunk_size=640, block_values=64, solver="bip")
        brute = optimize_layout(
            model, chunk_size=640, block_values=64, solver=SolverBackend.BRUTE_FORCE
        )
        assert dp.cost == pytest.approx(bip.cost)
        assert dp.cost == pytest.approx(brute.cost)

    def test_sla_is_applied(self):
        model = FrequencyModel(16)
        model.pq[:] = 5
        unconstrained = optimize_layout(model, chunk_size=1024, block_values=64)
        constrained = optimize_layout(
            model,
            chunk_size=1024,
            block_values=64,
            constants=constants(),
            sla=SLAConstraints(update_sla_ns=1_000),
        )
        assert unconstrained.num_partitions > constrained.num_partitions
        assert constrained.num_partitions <= 4

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            optimize_layout(FrequencyModel(4), chunk_size=256, block_values=64, solver="nope")


class TestCasperPlanner:
    def make_planner(self, values, workload=None, **kwargs):
        if workload is None:
            workload = Workload(
                operations=(
                    [PointQuery(key=int(values[i])) for i in range(0, 200, 5)]
                    + [Insert(key=int(values[-1]) + 1 + 2 * i) for i in range(40)]
                    + [RangeQuery(low=int(values[10]), high=int(values[200]))]
                    + [Update(old_key=int(values[3]), new_key=int(values[-5]) + 1)]
                )
            )
        return CasperPlanner(
            sample_workload=workload,
            block_values=64,
            constants=constants_for_block_values(64),
            **kwargs,
        )

    def test_plan_produces_valid_boundaries(self, small_values):
        planner = self.make_planner(small_values)
        plan = planner.plan_chunk(small_values)
        assert plan.boundaries[-1] == small_values.size
        assert np.all(np.diff(plan.boundaries) > 0)
        assert plan.estimated_cost > 0

    def test_plan_allocates_ghosts(self, small_values):
        planner = self.make_planner(small_values, ghost_fraction=0.01)
        plan = planner.plan_chunk(small_values)
        assert plan.ghost_allocation is not None
        assert plan.ghost_allocation.sum() == int(round(small_values.size * 0.01))

    def test_zero_ghost_fraction(self, small_values):
        planner = self.make_planner(small_values, ghost_fraction=0.0)
        plan = planner.plan_chunk(small_values)
        assert plan.ghost_allocation is None

    def test_build_chunk_returns_working_column(self, small_values):
        from repro.storage.cost_accounting import AccessCounter

        planner = self.make_planner(small_values, ghost_fraction=0.005)
        column = planner.build_chunk(
            small_values, np.arange(small_values.size), AccessCounter()
        )
        assert column.size == small_values.size
        column.check_invariants()
        probe = int(small_values[17])
        assert column.point_query(probe, return_rowids=True).tolist() == [17]

    def test_empty_chunk_rejected(self, small_values):
        planner = self.make_planner(small_values)
        with pytest.raises(ValueError):
            planner.plan_chunk(np.empty(0, dtype=np.int64))

    def test_workload_restricted_to_chunk_range(self, small_values):
        other_chunk_ops = [PointQuery(key=int(small_values[-1]) + 10_000)] * 50
        workload = Workload(
            operations=other_chunk_ops + [PointQuery(key=int(small_values[0]))]
        )
        planner = self.make_planner(small_values, workload=workload)
        restricted = planner._restrict_workload(small_values)
        assert len(restricted) == 1

    def test_read_hot_region_gets_finer_partitions(self, medium_values):
        # Point queries hammer the last 10% of the domain; inserts hit the front.
        hot = [
            PointQuery(key=int(v))
            for v in medium_values[-len(medium_values) // 10 :: 10]
        ]
        cold_inserts = [
            Insert(key=int(medium_values[i]) + 1) for i in range(0, 2_000, 10)
        ]
        workload = Workload(operations=hot * 3 + cold_inserts)
        planner = self.make_planner(medium_values, workload=workload)
        plan = planner.plan_chunk(medium_values)
        widths = np.diff(np.concatenate(([0], plan.boundaries)))
        hot_width = widths[-1]
        cold_width = widths[0]
        assert hot_width <= cold_width
