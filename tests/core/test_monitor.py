"""Tests for the online workload monitor and the in-place replan hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.monitor import WorkloadMonitor
from repro.core.planner import CasperPlanner
from repro.storage.engine import StorageEngine
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.operations import PointQuery, RangeQuery, Workload


def make_table(num_rows=2_048, chunk_size=512):
    keys = np.arange(num_rows, dtype=np.int64) * 2
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=8, block_values=64)
    return Table(
        keys,
        chunk_size=chunk_size,
        chunk_builder=layout_chunk_builder(spec),
        block_values=64,
    )


class TestRecording:
    def test_point_operations_attributed_to_owning_chunk(self):
        monitor = WorkloadMonitor()
        engine = StorageEngine(make_table(), monitor=monitor)
        engine.point_query(20)  # chunk 0 (keys 0..1022)
        engine.point_query(1_030)  # chunk 1
        engine.insert(21)  # chunk 0
        assert monitor.operation_counts(0) == {"point_query": 1, "insert": 1}
        assert monitor.operation_counts(1) == {"point_query": 1}

    def test_fence_value_writes_attributed_to_owning_chunk_only(self):
        monitor = WorkloadMonitor()
        table = make_table()
        engine = StorageEngine(table, monitor=monitor)
        bound = int(table.chunk_bounds[0])
        # Inserting (or update-targeting) the fence value lands in chunk 0
        # only; the read side of the update probes the full candidate span.
        engine.insert(bound)
        engine.update_key(bound, bound)
        assert monitor.operation_counts(1).get("insert") is None
        assert monitor.operation_counts(0)["insert"] == 1
        # The update's two sides are attributed as distinct kinds: the
        # source probes the full candidate span (chunks 0 and 1), the
        # target lands in the insert route (chunk 0) only.
        assert monitor.operation_counts(0)["update_source"] == 1
        assert monitor.operation_counts(0)["update_target"] == 1
        assert monitor.operation_counts(1) == {"update_source": 1}

    def test_range_operations_attributed_to_span(self):
        monitor = WorkloadMonitor()
        engine = StorageEngine(make_table(), monitor=monitor)
        engine.range_count(1_000, 1_100)  # spans chunks 0 and 1
        assert monitor.operation_counts(0).get("range_count") == 1
        assert monitor.operation_counts(1).get("range_count") == 1

    def test_monitoring_charges_no_accesses_beyond_the_operation(self):
        monitored = StorageEngine(make_table(), monitor=WorkloadMonitor())
        plain = StorageEngine(make_table())
        monitored.point_query(20)
        plain.point_query(20)
        monitored.range_count(100, 900)
        plain.range_count(100, 900)
        assert monitored.counter.snapshot() == plain.counter.snapshot()

    def test_mix_and_hot_chunks(self):
        monitor = WorkloadMonitor()
        engine = StorageEngine(make_table(), monitor=monitor)
        for _ in range(3):
            engine.point_query(20)
        engine.delete(40)
        engine.point_query(1_030)
        mix = monitor.chunk_mix(0)
        assert mix["point_query"] == pytest.approx(0.75)
        assert mix["delete"] == pytest.approx(0.25)
        assert monitor.hot_chunks() == [0, 1]
        assert monitor.hot_chunks(top=1) == [0]

    def test_batch_execution_is_observed(self):
        monitor = WorkloadMonitor()
        engine = StorageEngine(make_table(), monitor=monitor)
        engine.execute_batch(
            [PointQuery(key=20), PointQuery(key=24), RangeQuery(low=0, high=50)]
        )
        assert monitor.operation_counts(0) == {"point_query": 2, "range_count": 1}

    def test_sample_limit_bounds_retained_operations(self):
        monitor = WorkloadMonitor(sample_limit=2)
        engine = StorageEngine(make_table(), monitor=monitor)
        for _ in range(5):
            engine.point_query(20)
        assert len(monitor.recorded_workload(0)) == 2
        assert monitor.operation_counts(0) == {"point_query": 5}

    def test_chunk_activity_honours_configured_sample_limit(self):
        # Directly-constructed activities (and the monitor's own) must bound
        # their sample by the configured limit, not the module default.
        from repro.core.monitor import ChunkActivity

        activity = ChunkActivity(sample_limit=3)
        assert activity.sample.limit == 3
        monitor = WorkloadMonitor(sample_limit=3)
        engine = StorageEngine(make_table(), monitor=monitor)
        for key in range(0, 20, 2):
            engine.point_query(key)
        assert monitor._activity[0].sample_limit == 3
        assert len(monitor.recorded_workload(0)) == 3
        # The retained window is the *most recent* three operations.
        assert [op.key for op in monitor.recorded_workload(0)] == [14, 16, 18]

    def test_sample_limit_zero_disables_sampling(self):
        monitor = WorkloadMonitor(sample_limit=0)
        engine = StorageEngine(make_table(), monitor=monitor)
        engine.point_query(20)
        assert monitor.operation_counts(0) == {"point_query": 1}
        assert len(monitor.recorded_workload(0)) == 0

    def test_reset(self):
        monitor = WorkloadMonitor()
        engine = StorageEngine(make_table(), monitor=monitor)
        engine.point_query(20)
        monitor.reset()
        assert monitor.observed_chunks() == []


class TestReplanChunk:
    def make_planner(self):
        training = Workload(
            operations=[PointQuery(key=int(key)) for key in range(0, 1_000, 10)],
            name="training",
        )
        return CasperPlanner(sample_workload=training, block_values=64)

    def test_replan_preserves_data_and_invariants(self):
        monitor = WorkloadMonitor()
        table = make_table()
        engine = StorageEngine(table, monitor=monitor)
        for key in range(0, 200, 2):
            engine.point_query(key)
        keys_before = np.sort(table.keys())
        rebuilt = monitor.replan_chunk(table, 0, self.make_planner())
        assert rebuilt is table.chunks[0]
        assert np.array_equal(np.sort(table.keys()), keys_before)
        table.check_invariants()
        # Queries still resolve after the in-place re-layout.
        assert len(table.point_query(20)) == 1

    def test_replan_uses_recorded_sample(self):
        monitor = WorkloadMonitor()
        table = make_table()
        engine = StorageEngine(table, monitor=monitor)
        for key in range(0, 200, 2):
            engine.point_query(key)
        planner = self.make_planner()
        monitor.replan_chunk(table, 0, planner)
        # The original planner keeps its own history; the replan ran on a
        # derived planner seeded with the monitor's recorded operations.
        assert planner.plans == []
        assert monitor.observed_chunks() == []  # chunk 0 reset after replan

    def test_replan_unobserved_chunk_falls_back_to_planner_sample(self):
        monitor = WorkloadMonitor()
        table = make_table()
        keys_before = np.sort(table.keys())
        monitor.replan_chunk(table, 1, self.make_planner())
        assert np.array_equal(np.sort(table.keys()), keys_before)
        table.check_invariants()

    def test_rebuild_chunk_rejects_bad_index(self):
        table = make_table()
        from repro.storage.errors import LayoutError

        with pytest.raises(LayoutError):
            table.rebuild_chunk(99)

    def test_with_sample_copies_tuning(self):
        planner = self.make_planner()
        derived = planner.with_sample(Workload(name="drift"))
        assert derived.block_values == planner.block_values
        assert derived.sample_workload.name == "drift"
        assert derived.plans == []


class TestObserveWorkload:
    def test_matches_engine_attribution(self):
        # Feeding a workload through observe_workload must attribute the
        # same per-chunk counts the engine's dispatch would.
        from repro.workload.operations import (
            Delete,
            Insert,
            MultiPointQuery,
            MultiUpdate,
            Update,
        )

        operations = [
            PointQuery(key=20),
            RangeQuery(low=0, high=1_500),
            Insert(key=21),
            Delete(key=40),
            Update(old_key=60, new_key=2_001),
            MultiPointQuery(keys=(1_030, 50)),
            MultiUpdate(pairs=((80, 81),)),
        ]
        table = make_table()
        executed = WorkloadMonitor()
        engine = StorageEngine(table, monitor=executed)
        for operation in operations:
            engine.execute(operation)
        observed = WorkloadMonitor()
        observed.observe_workload(make_table(), Workload(operations=operations))
        assert observed.observed_chunks() == executed.observed_chunks()
        for chunk in observed.observed_chunks():
            assert observed.operation_counts(chunk) == executed.operation_counts(
                chunk
            )
