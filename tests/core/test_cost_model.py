"""Tests for the cost model (Eqs. 2-17)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import (
    CostModel,
    bck_read,
    boundaries_to_vector,
    fwd_read,
    partition_of_blocks,
    trail_parts,
    validate_partitioning,
    vector_to_boundaries,
)
from repro.core.frequency_model import FrequencyModel
from repro.storage.cost_accounting import CostConstants


def simple_constants():
    return CostConstants(random_read=10, random_write=20, seq_read=1, seq_write=1)


class TestStructuralQuantities:
    def test_validate_requires_last_boundary(self):
        with pytest.raises(ValueError):
            validate_partitioning([1, 0, 0])
        with pytest.raises(ValueError):
            validate_partitioning([])

    def test_boundary_round_trip(self):
        vector = boundaries_to_vector(8, [3, 5, 8])
        assert vector_to_boundaries(vector).tolist() == [3, 5, 8]

    def test_boundaries_out_of_range(self):
        with pytest.raises(ValueError):
            boundaries_to_vector(8, [9])

    def test_partition_of_blocks(self):
        vector = boundaries_to_vector(6, [2, 4, 6])
        assert partition_of_blocks(vector).tolist() == [0, 0, 1, 1, 2, 2]

    def test_bck_read_example(self):
        # Partitions of widths 3 and 2: bck_read = [0,1,2,0,1].
        vector = boundaries_to_vector(5, [3, 5])
        assert bck_read(vector).tolist() == [0, 1, 2, 0, 1]

    def test_fwd_read_example(self):
        vector = boundaries_to_vector(5, [3, 5])
        assert fwd_read(vector).tolist() == [2, 1, 0, 1, 0]

    def test_trail_parts_example(self):
        vector = boundaries_to_vector(5, [3, 5])
        assert trail_parts(vector).tolist() == [2, 2, 2, 1, 1]

    def test_all_boundaries_set(self):
        vector = np.ones(6, dtype=bool)
        assert bck_read(vector).sum() == 0
        assert fwd_read(vector).sum() == 0
        assert trail_parts(vector).tolist() == [6, 5, 4, 3, 2, 1]

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), n=st.integers(2, 24))
    def test_bck_fwd_match_partition_widths(self, data, n):
        bits = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
        bits[-1] = True
        vector = np.asarray(bits)
        back, forward = bck_read(vector), fwd_read(vector)
        partitions = partition_of_blocks(vector)
        for block in range(n):
            width = int((partitions == partitions[block]).sum())
            assert back[block] + forward[block] == width - 1


class TestWorkloadTerms:
    def test_terms_follow_eq17(self):
        model = FrequencyModel(3)
        model.pq[:] = [1, 0, 0]
        model.rs[:] = [0, 1, 0]
        model.re[:] = [0, 0, 1]
        model.sc[:] = [0, 1, 0]
        model.ins[:] = [2, 0, 0]
        model.de[:] = [0, 2, 0]
        model.udf[:] = [1, 0, 0]
        model.utf[:] = [0, 0, 1]
        model.udb[:] = [0, 1, 0]
        model.utb[:] = [1, 0, 0]
        constants = simple_constants()
        terms = CostModel(model, constants).terms
        rr, rw, sr = 10, 20, 1
        # Block 0: rs=0, pq=1, in=2, de=0, udf=1, udb=0, re=0, sc=0.
        assert terms.fixed[0] == pytest.approx(
            rr * (0 + 1 + 2 + 0 + 2 * 1 + 0) + sr * 0 + rw * (2 + 0 + 2 * 1 + 0)
        )
        assert terms.bck[0] == pytest.approx(sr * (0 + 1 + 0 + 1 + 0))
        assert terms.fwd[0] == pytest.approx(sr * (0 + 1 + 0 + 1 + 0))
        assert terms.parts[0] == pytest.approx((rr + rw) * (2 + 0 + 1 - 0 - 0 + 1))

    def test_total_cost_single_vs_full_partitioning(self):
        model = FrequencyModel(8)
        model.pq[:] = 1
        cost_model = CostModel(model, simple_constants())
        one_partition = cost_model.total_cost(boundaries_to_vector(8, [8]))
        fine = cost_model.total_cost(np.ones(8, dtype=bool))
        # Point queries are cheaper with more structure.
        assert fine < one_partition

    def test_insert_heavy_prefers_single_partition(self):
        model = FrequencyModel(8)
        model.ins[:] = 1
        cost_model = CostModel(model, simple_constants())
        one_partition = cost_model.total_cost(boundaries_to_vector(8, [8]))
        fine = cost_model.total_cost(np.ones(8, dtype=bool))
        assert one_partition < fine

    def test_total_cost_requires_matching_length(self):
        cost_model = CostModel(FrequencyModel(8), simple_constants())
        with pytest.raises(ValueError):
            cost_model.total_cost(boundaries_to_vector(4, [4]))

    def test_cost_breakdown_sums_to_total(self):
        model = FrequencyModel(6)
        model.pq[:] = [1, 2, 0, 1, 0, 3]
        model.ins[:] = [0, 1, 2, 0, 1, 0]
        cost_model = CostModel(model, simple_constants())
        vector = boundaries_to_vector(6, [2, 6])
        breakdown = cost_model.cost_breakdown(vector)
        assert sum(breakdown.values()) == pytest.approx(cost_model.total_cost(vector))


class TestPerOperationCosts:
    def test_point_query_cost_single_block_partition(self):
        cost_model = CostModel(FrequencyModel(4), simple_constants())
        vector = np.ones(4, dtype=bool)
        assert cost_model.point_query_cost(2, vector) == pytest.approx(10)

    def test_point_query_cost_wide_partition(self):
        cost_model = CostModel(FrequencyModel(4), simple_constants())
        vector = boundaries_to_vector(4, [4])
        assert cost_model.point_query_cost(1, vector) == pytest.approx(10 + 1 * 3)

    def test_insert_cost_grows_with_trailing_partitions(self):
        cost_model = CostModel(FrequencyModel(6), simple_constants())
        vector = np.ones(6, dtype=bool)
        costs = [cost_model.insert_cost(block, vector) for block in range(6)]
        assert costs == sorted(costs, reverse=True)
        assert costs[5] == pytest.approx((10 + 20) * 2)

    def test_delete_cost_includes_point_query(self):
        cost_model = CostModel(FrequencyModel(6), simple_constants())
        vector = np.ones(6, dtype=bool)
        assert cost_model.delete_cost(0, vector) == pytest.approx(
            cost_model.point_query_cost(0, vector) + 20 + (10 + 20) * 6
        )

    def test_update_cost_symmetric_in_distance(self):
        cost_model = CostModel(FrequencyModel(8), simple_constants())
        vector = np.ones(8, dtype=bool)
        forward = cost_model.update_cost(1, 6, vector)
        backward = cost_model.update_cost(6, 1, vector)
        assert forward == pytest.approx(backward)

    def test_range_query_cost(self):
        cost_model = CostModel(FrequencyModel(8), simple_constants())
        vector = boundaries_to_vector(8, [4, 8])
        cost = cost_model.range_query_cost(1, 6, vector)
        # start: RR + bck(1)=1; middle blocks 2..5 -> 4 SR; end: SR + fwd(6)=1.
        assert cost == pytest.approx(10 + 1 + 4 + 1 + 1)

    def test_per_operation_totals_sum_close_to_total_cost(self):
        rng = np.random.default_rng(0)
        model = FrequencyModel(12)
        for name in ("pq", "rs", "sc", "re", "in", "de"):
            model.histograms[name][:] = rng.integers(0, 5, 12)
        cost_model = CostModel(model, simple_constants())
        vector = boundaries_to_vector(12, [4, 9, 12])
        totals = cost_model.per_operation_totals(vector)
        assert sum(totals.values()) == pytest.approx(cost_model.total_cost(vector))


class TestEquiWidthCurve:
    def test_curve_monotonic_for_point_queries(self):
        model = FrequencyModel(32)
        model.pq[:] = 1
        curve = CostModel(model, simple_constants()).equi_width_cost_curve([1, 2, 4, 8, 16, 32])
        values = list(curve.values())
        assert values == sorted(values, reverse=True)
