"""Tests for per-chunk scalability modelling and robustness analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chunking import (
    ScalabilityModel,
    measure_solve_seconds,
    split_into_chunks,
    synthetic_frequency_model,
)
from repro.core.frequency_model import FrequencyModel
from repro.core.robustness import (
    RobustnessPoint,
    evaluate_robustness,
    mass_shift,
    rotational_shift,
)


class TestChunking:
    def test_split_into_chunks(self):
        chunks = split_into_chunks(np.arange(10), 4)
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_split_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            split_into_chunks(np.arange(4), 0)

    def test_synthetic_model_has_mixed_accesses(self):
        model = synthetic_frequency_model(32)
        assert model.pq.sum() > 0
        assert model.ins.sum() > 0

    def test_measure_solve_seconds_positive(self):
        assert measure_solve_seconds(32) > 0

    def test_scalability_model_chunking_reduces_latency(self):
        model = ScalabilityModel(per_block_unit_seconds=1e-9, exponent=3.0)
        single = model.decision_latency_seconds(10**8, block_values=4096, chunks=1)
        chunked = model.decision_latency_seconds(
            10**8, block_values=4096, chunks=1_000, cpus=64
        )
        assert chunked < single / 1_000

    def test_scalability_model_monotone_in_data_size(self):
        model = ScalabilityModel(per_block_unit_seconds=1e-9)
        small = model.decision_latency_seconds(10**6, block_values=4096)
        large = model.decision_latency_seconds(10**8, block_values=4096)
        assert large > small

    def test_scalability_model_validation(self):
        model = ScalabilityModel(per_block_unit_seconds=1e-9)
        with pytest.raises(ValueError):
            model.decision_latency_seconds(0, block_values=4096)
        with pytest.raises(ValueError):
            model.decision_latency_seconds(100, block_values=4096, chunks=0)

    def test_calibrate_produces_consistent_unit(self):
        model = ScalabilityModel.calibrate(calibration_blocks=64, exponent=2.0)
        assert model.per_block_unit_seconds > 0
        assert model.single_chunk_seconds(64) == pytest.approx(
            model.per_block_unit_seconds * 64**2
        )


def skewed_model(num_blocks=32):
    model = FrequencyModel(num_blocks)
    model.pq[:] = np.linspace(0, 10, num_blocks)
    model.ins[:] = np.linspace(10, 0, num_blocks)
    return model


class TestRobustness:
    def test_rotational_shift_rolls_histograms(self):
        model = FrequencyModel(8)
        model.pq[0] = 5
        shifted = rotational_shift(model, 0.25)
        assert shifted.pq[2] == 5
        assert shifted.pq[0] == 0

    def test_rotational_shift_preserves_mass(self):
        model = skewed_model()
        shifted = rotational_shift(model, 0.37)
        assert shifted.pq.sum() == pytest.approx(model.pq.sum())

    def test_rotational_shift_validation(self):
        with pytest.raises(ValueError):
            rotational_shift(FrequencyModel(4), 1.5)

    def test_mass_shift_moves_pq_to_inserts(self):
        model = skewed_model()
        shifted = mass_shift(model, 0.2)
        assert shifted.pq.sum() == pytest.approx(model.pq.sum() * 0.8)
        assert shifted.ins.sum() == pytest.approx(
            model.ins.sum() + model.pq.sum() * 0.2
        )

    def test_negative_mass_shift_moves_inserts_to_pq(self):
        model = skewed_model()
        shifted = mass_shift(model, -0.3)
        assert shifted.ins.sum() == pytest.approx(model.ins.sum() * 0.7)

    def test_zero_mass_shift_is_identity(self):
        model = skewed_model()
        shifted = mass_shift(model, 0.0)
        assert np.allclose(shifted.pq, model.pq)

    def test_mass_shift_validation(self):
        with pytest.raises(ValueError):
            mass_shift(FrequencyModel(4), 1.5)

    def test_evaluate_robustness_shape_and_baseline(self):
        model = skewed_model(16)
        points = evaluate_robustness(
            model, mass_shifts=[0.0, 0.2], rotational_shifts=[0.0, 0.25]
        )
        assert len(points) == 4
        assert all(isinstance(point, RobustnessPoint) for point in points)
        baseline = points[0]
        assert baseline.mass_shift == 0.0 and baseline.rotational_shift == 0.0
        # With no perturbation the trained layout *is* the oracle layout.
        assert baseline.normalized_latency == pytest.approx(1.0)

    def test_perturbation_never_beats_oracle(self):
        model = skewed_model(16)
        points = evaluate_robustness(
            model, mass_shifts=[0.0], rotational_shifts=[0.0, 0.2, 0.4]
        )
        for point in points:
            assert point.normalized_latency >= 1.0 - 1e-9
