"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.cost_accounting import constants_for_block_values


@pytest.fixture
def rng():
    """A seeded random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_values():
    """A small sorted array of even values (so odd inserts never collide)."""
    return np.arange(0, 2_048, 2, dtype=np.int64)


@pytest.fixture
def medium_values():
    """A larger sorted array with duplicates."""
    generator = np.random.default_rng(7)
    return np.sort(generator.integers(0, 50_000, 16_384)) * 2


@pytest.fixture
def block_values():
    """Small block size so tests exercise multi-block partitions quickly."""
    return 64


@pytest.fixture
def constants(block_values):
    """Cost constants matching the test block size."""
    return constants_for_block_values(block_values)
