"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro import discipline
from repro.storage.cost_accounting import constants_for_block_values


@pytest.fixture(autouse=True)
def _discipline_guard():
    """Fail any test that records a concurrency-discipline violation.

    Active only under ``REPRO_DEBUG_LATCHES=1`` (the concurrency-stress CI
    job): lock-order violations, potential-deadlock cycles and Eraser-lite
    lockset violations recorded by :mod:`repro.discipline` during the test
    surface as that test's failure.  The per-test reset also keeps the
    lock-order graph from aliasing latch identities across tests.
    """
    if not discipline.debug_enabled():
        yield
        return
    discipline.clear_violations()
    yield
    found = discipline.violations()
    assert not found, "discipline violations recorded:\n" + "\n\n".join(
        f"[{v.check}] {v.message}\n{v.stack}" for v in found
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "concurrency: threaded stress tests; CI re-runs them 5x with "
        "randomized hash seeds and a tight thread-switch interval "
        "(REPRO_SWITCH_INTERVAL) to widen race windows",
    )


@pytest.fixture
def tight_switch_interval():
    """Shrink the interpreter's thread-switch interval to widen races.

    The CI concurrency job sets ``REPRO_SWITCH_INTERVAL`` (1e-5 seconds)
    so the scheduler preempts threads mid-operation far more often than
    the 5ms default; locally the default keeps the stress tests fast.
    """
    old = sys.getswitchinterval()
    sys.setswitchinterval(float(os.environ.get("REPRO_SWITCH_INTERVAL", "1e-3")))
    try:
        yield
    finally:
        sys.setswitchinterval(old)


@pytest.fixture
def rng():
    """A seeded random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_values():
    """A small sorted array of even values (so odd inserts never collide)."""
    return np.arange(0, 2_048, 2, dtype=np.int64)


@pytest.fixture
def medium_values():
    """A larger sorted array with duplicates."""
    generator = np.random.default_rng(7)
    return np.sort(generator.integers(0, 50_000, 16_384)) * 2


@pytest.fixture
def block_values():
    """Small block size so tests exercise multi-block partitions quickly."""
    return 64


@pytest.fixture
def constants(block_values):
    """Cost constants matching the test block size."""
    return constants_for_block_values(block_values)
