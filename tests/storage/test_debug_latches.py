"""Runtime debug layer: latch tracking, tracked locks, entry-point
assertions, Eraser-lite guarded state, and the zero-overhead contract."""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import discipline
from repro.discipline import (
    LatchDisciplineError,
    TrackedLock,
    wrap_requires_latch,
    wrap_requires_lock,
)
from repro.storage.latches import ChunkLatches, DebugChunkLatches, RWLatch

pytestmark = pytest.mark.concurrency

REPO = Path(__file__).parents[2]


@pytest.fixture(autouse=True)
def clean_slate():
    discipline.clear_violations()
    yield
    discipline.clear_violations()


def recorded_checks():
    return [v.check for v in discipline.violations()]


# --------------------------------------------------------------------------
# Construction-time dispatch
# --------------------------------------------------------------------------

class TestDispatch:
    def test_debug_flag_selects_debug_class(self):
        assert type(ChunkLatches(3, debug=True)) is DebugChunkLatches
        assert type(ChunkLatches(3, debug=False)) is ChunkLatches

    def test_env_default_matches_debug_enabled(self):
        assert isinstance(
            ChunkLatches(3), DebugChunkLatches
        ) == discipline.debug_enabled()

    def test_lock_factories_follow_debug_flag(self):
        previous = discipline.debug_enabled()
        try:
            discipline.set_debug(False)
            assert not isinstance(
                discipline.make_lock("engine_stats"), TrackedLock
            )
            discipline.set_debug(True)
            assert isinstance(
                discipline.make_lock("engine_stats"), TrackedLock
            )
            assert isinstance(
                discipline.make_rlock("monitor"), TrackedLock
            )
            condition = discipline.make_condition("reorg_wake")
            assert isinstance(condition._lock, TrackedLock)
        finally:
            discipline.set_debug(previous)


# --------------------------------------------------------------------------
# assert_latched
# --------------------------------------------------------------------------

class TestAssertLatched:
    def test_passes_under_sufficient_hold(self):
        latches = ChunkLatches(4, debug=True)
        with latches.shared(1):
            latches.assert_latched(1, "shared")
        with latches.exclusive(2):
            latches.assert_latched(2, "shared")
            latches.assert_latched(2, "exclusive")

    def test_raises_without_hold(self):
        latches = ChunkLatches(4, debug=True)
        with pytest.raises(LatchDisciplineError):
            latches.assert_latched(1, "shared")

    def test_raises_on_too_weak_hold(self):
        latches = ChunkLatches(4, debug=True)
        with latches.shared(1), pytest.raises(LatchDisciplineError):
            latches.assert_latched(1, "exclusive")

    def test_module_helper_is_noop_on_plain_latches(self):
        # Tests swap in plain latch sets; the module-level helper must
        # tolerate them (checks compile out with the debug class).
        discipline.assert_latched(ChunkLatches(4, debug=False), 1, "shared")

    def test_tracking_survives_latch_replacement(self):
        # Held-set bookkeeping lives at the ChunkLatches level, so a
        # test-injected RWLatch instance stays tracked.
        latches = ChunkLatches(4, debug=True)
        latches._latches[1] = RWLatch()
        with latches.exclusive(1):
            latches.assert_latched(1, "exclusive")


# --------------------------------------------------------------------------
# TrackedLock ordering
# --------------------------------------------------------------------------

class TestTrackedLockOrder:
    def test_ascending_ranks_are_clean(self):
        state = TrackedLock("reorg_state")
        wake = TrackedLock("reorg_wake")
        with state, wake:
            pass
        assert recorded_checks() == []

    def test_descending_ranks_record_lo01_and_cycle(self):
        # Run the inversion on a private graph so the process-wide one
        # stays clean for other tests.
        state = TrackedLock("reorg_state")
        wake = TrackedLock("reorg_wake")
        with state, wake:
            pass
        with wake, state:
            pass
        checks = recorded_checks()
        assert "LO01" in checks
        assert "LO03" in checks
        deadlock = next(
            v for v in discipline.violations() if v.check == "LO03"
        )
        # Both acquisition stacks are attached to the report.
        assert deadlock.stack
        assert deadlock.extra_stack

    def test_reentrant_lock_notes_only_outermost(self):
        lock = TrackedLock("policy_state", reentrant=True)
        with lock, lock:
            assert discipline.holds_lock("policy_state")
        assert not discipline.holds_lock("policy_state")
        assert recorded_checks() == []

    def test_chunk_latch_under_lock_records_lo01(self):
        latches = ChunkLatches(4, debug=True)
        with TrackedLock("engine_stats"):
            with latches.shared(0):
                pass
        assert "LO01" in recorded_checks()


# --------------------------------------------------------------------------
# Entry-point wrappers
# --------------------------------------------------------------------------

class TestEntryWrappers:
    def test_requires_latch_wrapper_enforces(self):
        latches = ChunkLatches(4, debug=True)
        probe = wrap_requires_latch(lambda: "ok", "shared")
        with pytest.raises(LatchDisciplineError):
            probe()
        with latches.shared(2):
            assert probe() == "ok"

    def test_requires_latch_wrapper_mode_strength(self):
        latches = ChunkLatches(4, debug=True)
        probe = wrap_requires_latch(lambda: "ok", "exclusive")
        with latches.shared(2), pytest.raises(LatchDisciplineError):
            probe()
        with latches.exclusive(2):
            assert probe() == "ok"

    def test_requires_lock_wrapper_enforces(self):
        lock = TrackedLock("monitor")
        probe = wrap_requires_lock(lambda: "ok", "monitor")
        with pytest.raises(LatchDisciplineError):
            probe()
        with lock:
            assert probe() == "ok"


# --------------------------------------------------------------------------
# Eraser-lite guarded state
# --------------------------------------------------------------------------

class TestEraserLite:
    def make_instrumented(self):
        class Toy:
            def __init__(self):
                self._lock = discipline.make_lock("engine_stats")
                self.counter = 0
                self.label = "x"

        return discipline.instrument_guarded(
            Toy, {"counter": ("engine_stats", "rw")}
        )

    def test_single_thread_access_is_free(self):
        previous = discipline.debug_enabled()
        discipline.set_debug(True)
        try:
            toy = self.make_instrumented()()
            toy.counter += 1  # owner thread, unshared: no violation
            toy.label = "y"  # unguarded attribute: never checked
        finally:
            discipline.set_debug(previous)
        assert recorded_checks() == []

    def test_cross_thread_unlocked_write_records_gsr(self):
        previous = discipline.debug_enabled()
        discipline.set_debug(True)
        try:
            toy = self.make_instrumented()()

            def racer():
                toy.counter += 1  # unlocked read+write from second thread

            thread = threading.Thread(target=racer)
            thread.start()
            thread.join()
        finally:
            discipline.set_debug(previous)
        assert "GS-R" in recorded_checks()

    def test_cross_thread_locked_access_is_clean(self):
        previous = discipline.debug_enabled()
        discipline.set_debug(True)
        try:
            toy = self.make_instrumented()()

            def polite():
                with toy._lock:
                    toy.counter += 1

            thread = threading.Thread(target=polite)
            thread.start()
            thread.join()
            with toy._lock:
                assert toy.counter == 1
        finally:
            discipline.set_debug(previous)
        assert recorded_checks() == []


# --------------------------------------------------------------------------
# End-to-end under REPRO_DEBUG_LATCHES=1 and the zero-overhead contract
# --------------------------------------------------------------------------

SUBPROCESS_PROBE = """
import numpy as np
from repro import discipline
from repro.storage.latches import DebugChunkLatches
from repro.storage.table import Table

assert discipline.DEBUG_AT_IMPORT
table = Table(np.arange(4000, dtype=np.int64), chunk_size=512)
assert isinstance(table._latches, DebugChunkLatches)
table.insert(17)
table.delete(17)
assert len(table.point_query(1234)) >= 1
assert table.range_count(100, 900) > 0
table.rebuild_chunk(0)
bad = [v for v in discipline.violations()]
assert not bad, bad
assert not discipline.order_graph().has_cycles()
print("DEBUG_OK")
"""


class TestEndToEnd:
    def test_table_ops_clean_under_debug_env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env[discipline.DEBUG_ENV] = "1"
        result = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_PROBE],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "DEBUG_OK" in result.stdout

    def test_decorators_compile_out_when_disabled(self):
        if discipline.DEBUG_AT_IMPORT:
            pytest.skip("suite running with REPRO_DEBUG_LATCHES=1")
        from repro.storage.column import PartitionedColumn

        # Undecorated-at-import: the methods are the plain functions, so
        # the disabled mode has literally zero per-call overhead.
        assert "wrapper" not in PartitionedColumn.point_query.__qualname__
        assert (
            PartitionedColumn.point_query.__name__ == "point_query"
        )
