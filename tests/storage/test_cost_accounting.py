"""Tests for block-access accounting and cost constants."""

from __future__ import annotations

import pytest

from repro.storage.cost_accounting import (
    CACHE_LINE_BYTES,
    DEFAULT_BLOCK_BYTES,
    DEFAULT_BLOCK_VALUES,
    DEFAULT_COST_CONSTANTS,
    RANDOM_ACCESS_NS,
    SEQUENTIAL_LINE_NS,
    AccessCounter,
    CostConstants,
    OperationCost,
    blocks_spanned,
    constants_for_block_values,
)


class TestCostConstants:
    def test_defaults_follow_paper_values(self):
        constants = DEFAULT_COST_CONSTANTS
        assert constants.random_read == pytest.approx(100.0)
        assert constants.random_write == pytest.approx(100.0)
        lines = DEFAULT_BLOCK_BYTES / CACHE_LINE_BYTES
        assert constants.seq_read == pytest.approx(lines * 100.0 / 14.0)

    def test_for_block_scales_with_block_size(self):
        small = CostConstants.for_block(4 * 1024)
        large = CostConstants.for_block(64 * 1024)
        assert large.seq_read == pytest.approx(small.seq_read * 16)
        assert large.random_read == small.random_read

    def test_constants_for_block_values(self):
        constants = constants_for_block_values(1024)
        assert constants.seq_read == pytest.approx(
            1024 * 4 / CACHE_LINE_BYTES * SEQUENTIAL_LINE_NS
        )

    def test_scaled(self):
        doubled = DEFAULT_COST_CONSTANTS.scaled(2.0)
        assert doubled.random_read == pytest.approx(2 * RANDOM_ACCESS_NS)
        assert doubled.seq_write == pytest.approx(2 * DEFAULT_COST_CONSTANTS.seq_write)


class TestAccessCounter:
    def test_counters_accumulate(self):
        counter = AccessCounter()
        counter.random_read(2)
        counter.seq_read(3)
        counter.random_write()
        counter.seq_write(4)
        counter.index_probe()
        assert counter.random_reads == 2
        assert counter.seq_reads == 3
        assert counter.random_writes == 1
        assert counter.seq_writes == 4
        assert counter.index_probes == 1
        assert counter.total_blocks == 10

    def test_cost_is_dot_product(self):
        counter = AccessCounter(random_reads=2, seq_reads=3, random_writes=1)
        constants = CostConstants(
            random_read=10, random_write=20, seq_read=1, seq_write=5
        )
        assert counter.cost(constants) == pytest.approx(2 * 10 + 3 * 1 + 1 * 20)

    def test_snapshot_and_diff(self):
        counter = AccessCounter()
        counter.random_read(5)
        before = counter.snapshot()
        counter.random_read(3)
        counter.seq_write(2)
        diff = counter.diff(before)
        assert diff.random_reads == 3
        assert diff.seq_writes == 2
        assert before.random_reads == 5

    def test_reset(self):
        counter = AccessCounter(random_reads=5, seq_reads=2)
        counter.reset()
        assert counter.total_blocks == 0

    def test_merge_and_add(self):
        first = AccessCounter(random_reads=1, seq_reads=2)
        second = AccessCounter(random_reads=3, random_writes=4)
        total = first + second
        assert total.random_reads == 4
        assert total.seq_reads == 2
        assert total.random_writes == 4
        assert first.random_reads == 1

    def test_index_probe_cost(self):
        counter = AccessCounter(index_probes=3)
        constants = CostConstants(index_probe=50.0)
        assert counter.cost(constants) == pytest.approx(150.0)


class TestOperationCost:
    def test_simulated_ns(self):
        cost = OperationCost(accesses=AccessCounter(random_reads=1))
        assert cost.simulated_ns() == pytest.approx(100.0)


class TestBlocksSpanned:
    @pytest.mark.parametrize(
        ("start", "length", "block", "expected"),
        [
            (0, 0, 64, 0),
            (0, 1, 64, 1),
            (0, 64, 64, 1),
            (0, 65, 64, 2),
            (63, 2, 64, 2),
            (64, 64, 64, 1),
            (10, 200, 64, 4),
        ],
    )
    def test_examples(self, start, length, block, expected):
        assert blocks_spanned(start, length, block) == expected

    def test_default_block_values(self):
        assert DEFAULT_BLOCK_VALUES == DEFAULT_BLOCK_BYTES // 4
