"""Chunk-level copy-on-write: latches, generation-checked publish, torn reads.

The table's concurrency model (see :mod:`repro.storage.table`) promises
that a read observes every chunk it visits as a complete pre-swap or
post-swap snapshot -- never a torn mix -- and that a publish refuses a
replacement built from data a write has since changed.  These tests pin
both halves: unit tests for the :class:`RWLatch` semantics and the
snapshot/build/publish protocol, plus hypothesis property tests that
interleave ``apply_action``-style swaps with ``multi_point_query`` /
``multi_range_count`` at controlled yield points (the latch boundaries,
where a concurrent publish can legally land mid-span).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.latches import ChunkLatches, RWLatch
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder

pytestmark = pytest.mark.concurrency

NUM_KEYS = 256
CHUNK_SIZE = 64
BLOCK_VALUES = 16

SORTED_BUILDER = layout_chunk_builder(
    LayoutSpec(kind=LayoutKind.SORTED, block_values=BLOCK_VALUES)
)
EQUI_BUILDER = layout_chunk_builder(
    LayoutSpec(kind=LayoutKind.EQUI, partitions=4, block_values=BLOCK_VALUES)
)


def make_table() -> Table:
    keys = np.arange(NUM_KEYS, dtype=np.int64) * 2
    payload = (keys * 3).reshape(-1, 1)
    return Table(
        keys,
        payload,
        chunk_size=CHUNK_SIZE,
        chunk_builder=SORTED_BUILDER,
        block_values=BLOCK_VALUES,
    )


class TestRWLatch:
    def test_readers_share(self):
        latch = RWLatch()
        latch.acquire_read()
        entered = threading.Event()

        def second_reader():
            latch.acquire_read()
            entered.set()
            latch.release_read()

        thread = threading.Thread(target=second_reader)
        thread.start()
        assert entered.wait(timeout=5.0), "two readers must share the latch"
        latch.release_read()
        thread.join(timeout=5.0)

    def test_writer_excludes_reader(self):
        latch = RWLatch()
        latch.acquire_write()
        entered = threading.Event()

        def reader():
            latch.acquire_read()
            entered.set()
            latch.release_read()

        thread = threading.Thread(target=reader)
        thread.start()
        assert not entered.wait(timeout=0.1), "reader must wait for the writer"
        latch.release_write()
        assert entered.wait(timeout=5.0), "reader must proceed after release"
        thread.join(timeout=5.0)

    def test_writer_excludes_writer(self):
        latch = RWLatch()
        latch.acquire_write()
        entered = threading.Event()

        def writer():
            with latch:
                entered.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert not entered.wait(timeout=0.1), "writers must serialize"
        latch.release_write()
        assert entered.wait(timeout=5.0)
        thread.join(timeout=5.0)

    def test_waiting_writer_blocks_new_readers(self):
        # Writer preference: once a writer queues, a fresh reader waits
        # behind it, so a steady read stream cannot starve a publish.
        latch = RWLatch()
        latch.acquire_read()
        writer_done = threading.Event()
        reader_entered = threading.Event()

        def writer():
            with latch:
                writer_done.set()

        def late_reader():
            latch.acquire_read()
            reader_entered.set()
            latch.release_read()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Give the writer time to queue behind the held read latch.
        assert not writer_done.wait(timeout=0.1)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        assert not reader_entered.wait(timeout=0.1), (
            "a reader arriving behind a waiting writer must queue"
        )
        latch.release_read()
        assert writer_done.wait(timeout=5.0)
        assert reader_entered.wait(timeout=5.0)
        writer_thread.join(timeout=5.0)
        reader_thread.join(timeout=5.0)

    def test_write_many_orders_and_deduplicates(self):
        latches = ChunkLatches(4)
        acquired = latches.acquire_write_many([3, 1, 3, 2, 1])
        assert list(acquired) == [1, 2, 3]
        latches.release_write_many(acquired)
        # Releasing restores exclusivity for a fresh acquisition.
        again = latches.acquire_write_many([1, 2, 3])
        latches.release_write_many(again)


class TestGenerationCheckedPublish:
    def test_publish_rejects_stale_snapshot(self):
        table = make_table()
        snapshot = table.snapshot_chunk(1)
        before = table.chunks[1]
        # A write lands after the snapshot: the replacement prices data
        # that no longer exists, so the publish must refuse it.
        table.insert(int(snapshot.values[0]) + 1)
        rebuilt = table.build_chunk_replacement(snapshot, EQUI_BUILDER)
        assert table.publish_chunk(snapshot, rebuilt) is False
        assert table.chunks[1] is not rebuilt
        assert table.chunks[1] is before  # the live chunk rippled in place
        table.check_invariants()

    def test_publish_swaps_in_one_generation_step(self):
        table = make_table()
        generation = table.chunk_generation(2)
        snapshot = table.snapshot_chunk(2)
        rebuilt = table.build_chunk_replacement(snapshot, EQUI_BUILDER)
        assert table.publish_chunk(snapshot, rebuilt) is True
        assert table.chunks[2] is rebuilt
        assert table.chunk_generation(2) == generation + 1
        table.check_invariants()

    def test_double_publish_of_same_snapshot_refused(self):
        # "No replan is double-applied": the first publish bumps the
        # generation, so re-publishing the same decision must fail.
        table = make_table()
        snapshot = table.snapshot_chunk(0)
        first = table.build_chunk_replacement(snapshot, EQUI_BUILDER)
        second = table.build_chunk_replacement(snapshot, EQUI_BUILDER)
        assert table.publish_chunk(snapshot, first) is True
        assert table.publish_chunk(snapshot, second) is False
        assert table.chunks[0] is first
        table.check_invariants()

    def test_publish_tightens_stale_high_fence(self):
        table = make_table()
        # Delete the maximum of chunk 0; its fence goes stale-high.
        top = int(table.chunk_bounds[0])
        table.delete(top)
        snapshot = table.snapshot_chunk(0)
        rebuilt = table.build_chunk_replacement(snapshot, SORTED_BUILDER)
        assert table.publish_chunk(snapshot, rebuilt) is True
        assert int(table.chunk_bounds[0]) == int(snapshot.values[-1])
        assert np.array_equal(table.router.fences, table.chunk_bounds)
        table.check_invariants()

    def test_rebuild_chunk_retries_past_racing_write(self):
        table = make_table()
        raced = {"done": False}

        def racing_builder(values, rowids, counter):
            # The first build is invalidated by a write that slips in
            # between snapshot and publish; rebuild_chunk must re-snapshot
            # (now including the new key) and land on the second attempt.
            if not raced["done"]:
                raced["done"] = True
                table.insert(1)  # odd key, routes to chunk 0
            return SORTED_BUILDER(values, rowids, counter)

        rebuilt = table.rebuild_chunk(0, racing_builder)
        assert table.chunks[0] is rebuilt
        assert 1 in rebuilt.values().tolist()
        table.check_invariants()

    def test_snapshot_is_immune_to_later_writes(self):
        table = make_table()
        snapshot = table.snapshot_chunk(0)
        frozen = snapshot.values.copy()
        table.insert(3)
        table.delete(int(frozen[0]))
        assert np.array_equal(snapshot.values, frozen), (
            "a pinned snapshot must not observe writes that follow it"
        )


class TriggerLatch(RWLatch):
    """An instrumented latch that fires a hook at each read acquisition.

    Read acquisitions are the yield points of the table's concurrency
    model: between two chunk visits a reader holds no latch, so a publish
    may legally land there.  The hook runs *before* the acquisition (the
    caller holds nothing), which is exactly where a background apply can
    interleave with a span read.
    """

    __slots__ = ("hook",)

    def __init__(self, hook) -> None:
        super().__init__()
        self.hook = hook

    def acquire_read(self) -> None:
        self.hook()
        super().acquire_read()


def instrument(table: Table, schedule: dict[int, int]) -> None:
    """Swap chunk layouts at scheduled read-latch acquisitions.

    ``schedule`` maps the ordinal of a read acquisition (table-wide) to
    the chunk index to rebuild at that instant, alternating between the
    sorted and equi-partitioned builders -- a content-preserving replan,
    exactly what a background reorganizer publishes.
    """
    state = {"acquires": 0, "inside": 0, "flips": {}}

    def hook() -> None:
        if state["inside"]:
            # Re-entrant acquisition from the rebuild's own snapshot.
            return
        ordinal = state["acquires"]
        state["acquires"] += 1
        target = schedule.get(ordinal)
        if target is None:
            return
        state["inside"] += 1
        try:
            flips = state["flips"].get(target, 0)
            builder = EQUI_BUILDER if flips % 2 == 0 else SORTED_BUILDER
            state["flips"][target] = flips + 1
            table.rebuild_chunk(target, builder)
        finally:
            state["inside"] -= 1

    for chunk_index in range(table.num_chunks):
        table.latches.replace(chunk_index, TriggerLatch(hook))


class TestInterleavedSwapReads:
    """Hypothesis: reads interleaved with publishes are never torn.

    Replans preserve chunk contents, so the observable contract is that
    every read returns exactly what both the pre-swap and post-swap chunk
    hold -- any deviation means the read caught a half-published state.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=2 * NUM_KEYS),
            min_size=1,
            max_size=24,
        ),
        swaps=st.dictionaries(
            st.integers(min_value=0, max_value=16),
            st.integers(min_value=0, max_value=NUM_KEYS // CHUNK_SIZE - 1),
            max_size=4,
        ),
    )
    def test_point_reads_see_pre_or_post_swap_chunks(self, keys, swaps):
        table = make_table()
        expected = [
            [(row.key, row.payload["a1"]) for row in rows]
            for rows in table.multi_point_query(keys)
        ]
        instrument(table, swaps)
        observed = [
            [(row.key, row.payload["a1"]) for row in rows]
            for rows in table.multi_point_query(keys)
        ]
        assert observed == expected
        table.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(
        bounds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2 * NUM_KEYS),
                st.integers(min_value=0, max_value=2 * NUM_KEYS),
            ).map(lambda p: (min(p), max(p))),
            min_size=1,
            max_size=16,
        ),
        swaps=st.dictionaries(
            st.integers(min_value=0, max_value=16),
            st.integers(min_value=0, max_value=NUM_KEYS // CHUNK_SIZE - 1),
            max_size=4,
        ),
    )
    def test_range_counts_see_pre_or_post_swap_chunks(self, bounds, swaps):
        table = make_table()
        expected = table.multi_range_count(bounds).tolist()
        instrument(table, swaps)
        observed = table.multi_range_count(bounds).tolist()
        assert observed == expected
        table.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=2 * NUM_KEYS),
            min_size=1,
            max_size=12,
        ),
        swap_at=st.integers(min_value=0, max_value=8),
    )
    def test_serial_point_reads_across_swaps(self, keys, swap_at):
        # The per-op path (span loop) yields between candidate chunks too.
        table = make_table()
        expected = [
            [(row.key, row.payload["a1"]) for row in table.point_query(key)]
            for key in keys
        ]
        instrument(table, {swap_at: 1})
        observed = [
            [(row.key, row.payload["a1"]) for row in table.point_query(key)]
            for key in keys
        ]
        assert observed == expected
        table.check_invariants()


class TestInsertRouteRevalidation:
    """Writes that race a fence-tightening publish must re-route.

    Insert routing runs before the chunk latch is taken; a publish that
    tightens the routed chunk's fence in that window would otherwise leave
    the new key above the fence -- permanently invisible to the router.
    The write paths revalidate their routes under the latch and retry.
    """

    @staticmethod
    def _arm_publish_on_write(table, chunk_index):
        """Instrument chunk 0's latch to publish (tightening the fence)
        right before the next exclusive acquisition."""
        state = {"armed": True}

        class WriteHookLatch(RWLatch):
            def acquire_write(self):
                if state["armed"]:
                    state["armed"] = False
                    snap = table.snapshot_chunk(chunk_index)
                    rebuilt = table.build_chunk_replacement(snap)
                    assert table.publish_chunk(snap, rebuilt)
                super().acquire_write()

        table.latches.replace(chunk_index, WriteHookLatch())
        return state

    def test_insert_rerouted_when_publish_tightens_fence(self):
        table = make_table()
        top = int(table.chunk_bounds[0])
        table.delete(top)  # chunk 0's fence goes stale-high at `top`
        state = self._arm_publish_on_write(table, 0)
        # Routed to chunk 0 under the stale fence; the armed publish
        # tightens it before the latch lands, so the insert must re-route
        # (to chunk 1) instead of storing `top` above chunk 0's new fence.
        rowid = table.insert(top)
        assert not state["armed"], "the racing publish must have fired"
        rows = table.point_query(top)
        assert [row.rowid for row in rows] == [rowid]
        table.check_invariants()

    def test_bulk_insert_reroutes_raced_keys(self):
        table = make_table()
        top = int(table.chunk_bounds[0])
        table.delete(top)
        state = self._arm_publish_on_write(table, 0)
        rowids = table.bulk_insert([top, top - 1])
        assert not state["armed"]
        for key, rowid in zip((top, top - 1), rowids.tolist()):
            assert [row.rowid for row in table.point_query(key)] == [rowid]
        table.check_invariants()

    def test_update_target_rerouted_when_publish_tightens_fence(self):
        table = make_table()
        top = int(table.chunk_bounds[0])
        table.delete(top)
        state = self._arm_publish_on_write(table, 0)
        source = int(table.chunks[1].values()[0])
        # The move's insert half targets chunk 0 under the stale fence;
        # after the armed publish tightens it, the revalidation must land
        # `top` where the router can still find it.
        table.update_key(source, top)
        assert not state["armed"]
        assert len(table.point_query(top)) == 1
        assert len(table.point_query(source)) == 0
        table.check_invariants()
