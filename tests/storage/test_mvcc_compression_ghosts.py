"""Tests for MVCC snapshot isolation, compression codecs and ghost helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.compression import (
    DictionaryCodec,
    FrameOfReferenceCodec,
    RunLengthCodec,
)
from repro.storage.errors import TransactionConflictError, TransactionStateError
from repro.storage.ghost_values import (
    ghost_budget_from_fraction,
    spread_evenly,
    spread_proportionally,
)
from repro.storage.mvcc import TransactionManager, TransactionStatus


class TestTransactionManager:
    def test_commit_applies_buffered_writes(self):
        manager = TransactionManager()
        applied = []
        txn = manager.begin()
        txn.record_write(1, lambda: applied.append("a"))
        manager.commit(txn)
        assert applied == ["a"]
        assert txn.status is TransactionStatus.COMMITTED

    def test_first_committer_wins(self):
        manager = TransactionManager()
        first = manager.begin()
        second = manager.begin()
        first.record_write(7, lambda: None)
        second.record_write(7, lambda: None)
        manager.commit(first)
        with pytest.raises(TransactionConflictError):
            manager.commit(second)
        assert second.status is TransactionStatus.ABORTED
        assert manager.aborted == 1

    def test_disjoint_writes_do_not_conflict(self):
        manager = TransactionManager()
        first = manager.begin()
        second = manager.begin()
        first.record_write(1, lambda: None)
        second.record_write(2, lambda: None)
        manager.commit(first)
        manager.commit(second)
        assert manager.committed == 2

    def test_later_transaction_sees_no_conflict(self):
        manager = TransactionManager()
        first = manager.begin()
        first.record_write(5, lambda: None)
        manager.commit(first)
        second = manager.begin()  # begins after the commit
        second.record_write(5, lambda: None)
        manager.commit(second)

    def test_abort_discards_writes(self):
        manager = TransactionManager()
        applied = []
        txn = manager.begin()
        txn.record_write(1, lambda: applied.append("x"))
        manager.abort(txn)
        assert applied == []
        assert txn.status is TransactionStatus.ABORTED

    def test_cannot_use_finished_transaction(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionStateError):
            txn.record_write(1, lambda: None)
        with pytest.raises(TransactionStateError):
            manager.commit(txn)

    def test_cannot_abort_committed(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionStateError):
            manager.abort(txn)

    def test_active_transactions_tracked(self):
        manager = TransactionManager()
        txn = manager.begin()
        assert manager.active_transactions == 1
        manager.commit(txn)
        assert manager.active_transactions == 0


class TestCompressionCodecs:
    def test_dictionary_roundtrip(self, rng):
        values = rng.integers(0, 100, 1_000)
        codec = DictionaryCodec()
        dictionary, codes = codec.encode(values)
        assert np.array_equal(codec.decode(dictionary, codes), values)

    def test_dictionary_ratio_improves_with_few_distinct(self, rng):
        codec = DictionaryCodec()
        few = codec.stats(rng.integers(0, 16, 10_000)).ratio
        many = codec.stats(rng.integers(0, 2**30, 10_000)).ratio
        assert few > many

    def test_frame_of_reference_roundtrip(self, rng):
        values = rng.integers(10_000, 20_000, 500)
        codec = FrameOfReferenceCodec()
        reference, offsets = codec.encode(values)
        assert np.array_equal(codec.decode(reference, offsets), values)

    def test_frame_of_reference_partitioned_beats_global(self):
        # Sorted data: per-partition ranges are much smaller than the global one.
        values = np.sort(np.random.default_rng(0).integers(0, 2**30, 65_536))
        codec = FrameOfReferenceCodec()
        global_ratio = codec.stats(values).ratio
        partitioned = codec.partitioned_stats(values, list(range(1024, 65_537, 1024)))
        assert partitioned.ratio > global_ratio

    def test_rle_roundtrip(self):
        values = np.asarray([1, 1, 1, 2, 2, 3, 3, 3, 3])
        codec = RunLengthCodec()
        run_values, run_lengths = codec.encode(values)
        assert np.array_equal(codec.decode(run_values, run_lengths), values)

    def test_rle_prefers_sorted_data(self, rng):
        codec = RunLengthCodec()
        data = rng.integers(0, 64, 10_000)
        assert codec.stats(np.sort(data)).ratio > codec.stats(data).ratio

    def test_stats_report_sizes(self, rng):
        stats = DictionaryCodec().stats(rng.integers(0, 8, 1_000))
        assert stats.values == 1_000
        assert stats.uncompressed_bits == 32_000
        assert stats.compressed_bits < stats.uncompressed_bits

    def test_empty_frame_of_reference(self):
        stats = FrameOfReferenceCodec().stats(np.empty(0, dtype=np.int64))
        assert stats.values == 0


class TestGhostHelpers:
    def test_spread_evenly_sums_to_total(self):
        allocation = spread_evenly(10, 4)
        assert allocation.sum() == 10
        assert allocation.max() - allocation.min() <= 1

    def test_spread_evenly_validation(self):
        with pytest.raises(ValueError):
            spread_evenly(5, 0)
        with pytest.raises(ValueError):
            spread_evenly(-1, 5)

    def test_spread_proportionally_matches_weights(self):
        allocation = spread_proportionally(np.asarray([1.0, 3.0]), 100)
        assert allocation.tolist() == [25, 75]

    def test_spread_proportionally_zero_weights_falls_back(self):
        allocation = spread_proportionally(np.zeros(4), 8)
        assert allocation.sum() == 8

    def test_spread_proportionally_validation(self):
        with pytest.raises(ValueError):
            spread_proportionally(np.asarray([-1.0, 1.0]), 5)

    def test_ghost_budget_from_fraction(self):
        assert ghost_budget_from_fraction(1_000_000, 0.001) == 1_000
        with pytest.raises(ValueError):
            ghost_budget_from_fraction(100, -0.1)

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=20),
        total=st.integers(0, 10_000),
    )
    def test_proportional_allocation_always_sums_to_total(self, weights, total):
        allocation = spread_proportionally(np.asarray(weights), total)
        assert allocation.sum() == total
        assert np.all(allocation >= 0)
