"""Bulk-write fast path: sorted batch inserts/deletes with coalesced ripples.

The contract of the bulk-write API mirrors the batch read API's, adapted for
writes: ``bulk_insert``/``bulk_delete`` are *equivalent to the sequential
path applied in ascending (stable) value order* -- identical live layout,
row ids and invariant-clean state -- while the simulated block accesses are
bounded by the sequential path's (coalesced ripple sweeps charge each
touched block once per batch instead of once per write) and exactly equal
where no coalescing applies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.column import (
    PartitionedColumn,
    snap_boundaries_to_duplicates,
)
from repro.storage.delta_store import DeltaStoreColumn
from repro.storage.engine import StorageEngine
from repro.storage.errors import LayoutError, ValueNotFoundError
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.operations import (
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    PointQuery,
)

COUNTER_FIELDS = (
    "random_reads",
    "random_writes",
    "seq_reads",
    "seq_writes",
    "index_probes",
)


def assert_charges_bounded(bulk_counter, sequential_counter):
    """Bulk accesses never exceed sequential; probes are never coalesced."""
    assert bulk_counter.index_probes == sequential_counter.index_probes
    for field in COUNTER_FIELDS[:-1]:
        assert getattr(bulk_counter, field) <= getattr(sequential_counter, field)


def assert_same_live_layout(reference: PartitionedColumn, bulk: PartitionedColumn):
    """Live layout equality: everything any read can observe."""
    for name in ("_starts", "_counts", "_fences", "_mins", "_maxs"):
        assert np.array_equal(getattr(reference, name), getattr(bulk, name)), name
    assert reference.physical_size == bulk.physical_size
    for start, count in zip(reference._starts, reference._counts):
        start, count = int(start), int(count)
        assert np.array_equal(
            reference._data[start : start + count],
            bulk._data[start : start + count],
        )
        if reference._rowids is not None:
            assert np.array_equal(
                reference._rowids[start : start + count],
                bulk._rowids[start : start + count],
            )


def make_column_pair(rng, *, ghost_mode: bool, size=400, domain=2_000):
    base = np.sort(rng.integers(0, domain, size)) * 2
    raw = np.append(np.unique(rng.integers(1, size, 9)), size).astype(np.int64)
    boundaries = snap_boundaries_to_duplicates(base, raw)
    ghosts = rng.integers(0, 5, boundaries.size) if ghost_mode else None
    build = lambda: PartitionedColumn(
        base,
        boundaries,
        ghost_allocation=ghosts,
        block_values=32,
        track_rowids=True,
    )
    return base, build(), build()


class TestSnapBoundariesVectorized:
    def test_matches_reference_walk(self, rng):
        """The searchsorted form reproduces the per-boundary while-walk."""
        for _ in range(50):
            values = np.sort(rng.integers(0, 40, 200))
            boundaries = np.append(np.unique(rng.integers(1, 200, 8)), 200)
            reference: list[int] = []
            for end in boundaries:
                end = int(end)
                while end < 200 and values[end] == values[end - 1]:
                    end += 1
                if not reference or end > reference[-1]:
                    reference.append(end)
            if reference[-1] != 200:
                reference.append(200)
            assert snap_boundaries_to_duplicates(values, boundaries).tolist() == (
                reference
            )

    def test_rejects_out_of_range(self):
        values = np.arange(10)
        with pytest.raises(LayoutError):
            snap_boundaries_to_duplicates(values, [0, 10])
        with pytest.raises(LayoutError):
            snap_boundaries_to_duplicates(values, [11])

    def test_appends_final_boundary(self):
        values = np.arange(10)
        assert snap_boundaries_to_duplicates(values, [4]).tolist() == [4, 10]


class TestColumnBulkInsert:
    @pytest.mark.parametrize("ghost_mode", [False, True])
    def test_equivalent_to_sorted_sequential_inserts(self, rng, ghost_mode):
        for _ in range(20):
            _, sequential, bulk = make_column_pair(rng, ghost_mode=ghost_mode)
            batch = rng.integers(0, 4_200, int(rng.integers(1, 120)))
            order = np.argsort(batch, kind="stable")
            expected = [sequential.insert(int(v)) for v in batch[order]]
            rowids = bulk.bulk_insert(batch)
            assert np.array_equal(rowids[order], np.asarray(expected))
            assert_same_live_layout(sequential, bulk)
            # Inserts never abandon written slots, so even dead bytes match.
            assert np.array_equal(sequential._data, bulk._data)
            assert_charges_bounded(bulk.counter, sequential.counter)
            bulk.check_invariants()

    def test_explicit_rowids_round_trip(self, rng):
        _, sequential, bulk = make_column_pair(rng, ghost_mode=True)
        batch = rng.integers(0, 4_200, 40)
        rowids = rng.permutation(40) + 10_000
        order = np.argsort(batch, kind="stable")
        for value, rowid in zip(batch[order], rowids[order]):
            sequential.insert(int(value), rowid=int(rowid))
        assert np.array_equal(bulk.bulk_insert(batch, rowids), rowids)
        assert_same_live_layout(sequential, bulk)
        assert bulk._next_rowid == sequential._next_rowid

    def test_single_insert_charges_exactly_sequential(self, rng):
        """Where no coalescing applies the charges are equal, not just <=."""
        _, sequential, bulk = make_column_pair(rng, ghost_mode=False)
        sequential.insert(1_001)
        bulk.bulk_insert([1_001])
        assert bulk.counter.snapshot() == sequential.counter.snapshot()

    def test_growth_matches_sequential(self, rng):
        base = np.arange(64, dtype=np.int64) * 2
        build = lambda: PartitionedColumn(
            base, [16, 32, 64], block_values=16, track_rowids=True
        )
        sequential, bulk = build(), build()
        batch = rng.integers(0, 200, 300)
        for value in np.sort(batch, kind="stable"):
            sequential.insert(int(value))
        bulk.bulk_insert(batch)
        assert_same_live_layout(sequential, bulk)
        assert bulk.counter.seq_writes == sequential.counter.seq_writes
        bulk.check_invariants()

    def test_empty_batch_is_free(self, rng):
        _, _, bulk = make_column_pair(rng, ghost_mode=False)
        before = bulk.counter.snapshot()
        assert bulk.bulk_insert([]).size == 0
        assert bulk.counter.snapshot() == before


class TestColumnBulkDelete:
    @pytest.mark.parametrize("ghost_mode", [False, True])
    def test_equivalent_to_sorted_sequential_deletes(self, rng, ghost_mode):
        for _ in range(20):
            base, sequential, bulk = make_column_pair(rng, ghost_mode=ghost_mode)
            batch = np.concatenate(
                (
                    rng.choice(base, int(rng.integers(1, 100))),
                    rng.integers(0, 4_200, 8),
                )
            )
            rng.shuffle(batch)
            order = np.argsort(batch, kind="stable")
            expected = []
            for value in batch[order]:
                try:
                    expected.append(sequential.delete(int(value), limit=1))
                except ValueNotFoundError:
                    expected.append(0)
            deleted = bulk.bulk_delete(batch)
            assert np.array_equal(deleted[order], np.asarray(expected))
            assert_same_live_layout(sequential, bulk)
            assert_charges_bounded(bulk.counter, sequential.counter)
            bulk.check_invariants()

    def test_single_delete_charges_exactly_sequential(self, rng):
        base, sequential, bulk = make_column_pair(rng, ghost_mode=False)
        victim = int(base[37])
        sequential.delete(victim, limit=1)
        assert bulk.bulk_delete([victim]).tolist() == [1]
        assert bulk.counter.snapshot() == sequential.counter.snapshot()

    def test_missing_values_report_zero_without_raising(self, rng):
        base, _, bulk = make_column_pair(rng, ghost_mode=False)
        assert bulk.bulk_delete([1, 3, int(base[0])]).tolist() == [0, 0, 1]

    def test_duplicate_requests_drain_duplicates(self):
        values = np.asarray([2, 2, 2, 4, 6, 8, 10, 12], dtype=np.int64)
        column = PartitionedColumn(values, [4, 8], track_rowids=True)
        deleted = column.bulk_delete([2, 2, 2, 2])
        assert deleted.tolist() == [1, 1, 1, 0]
        assert column.point_query(2).size == 0
        column.check_invariants()

    def test_delete_limit_removes_from_one_scan(self):
        """The quadratic per-victim rescan is gone: one charged scan, all
        victims removed back-to-front from its positions."""
        values = np.asarray([5] * 64 + list(range(100, 164)), dtype=np.int64)
        column = PartitionedColumn(np.sort(values), [64, 128], block_values=16)
        before = column.counter.snapshot()
        assert column.delete(5, limit=50) == 50
        diff = column.counter.diff(before)
        # One scan (1 random + blocks-1 sequential reads) plus one swap write
        # per victim and the dense hole ripples; no per-victim rescans.
        assert diff.random_reads == 1 + 50  # scan + one ripple step per hole
        assert column.point_query(5).size == 14
        column.check_invariants()


class TestDeltaStoreBulk:
    def make_pair(self, rng, **kwargs):
        base = np.sort(rng.integers(0, 500, 256)) * 2
        build = lambda: DeltaStoreColumn(
            base, block_values=32, track_rowids=True, **kwargs
        )
        return base, build(), build()

    def test_bulk_insert_matches_sequential_below_threshold(self, rng):
        _, sequential, bulk = self.make_pair(rng, merge_threshold=10.0)
        batch = rng.integers(0, 1_100, 40)
        order = np.argsort(batch, kind="stable")
        expected = [sequential.insert(int(v)) for v in batch[order]]
        rowids = bulk.bulk_insert(batch)
        assert np.array_equal(rowids[order], np.asarray(expected))
        assert sequential._delta_values == bulk._delta_values
        assert sequential._delta_rowids == bulk._delta_rowids
        assert bulk.counter.snapshot() == sequential.counter.snapshot()
        bulk.check_invariants()

    def test_bulk_insert_coalesces_merges(self, rng):
        _, sequential, bulk = self.make_pair(rng, merge_entries=16)
        batch = rng.integers(0, 1_100, 100) | 1
        for value in np.sort(batch):
            sequential.insert(int(value))
        bulk.bulk_insert(batch)
        assert sequential.merges > 1
        assert bulk.merges == 1
        assert np.array_equal(np.sort(sequential.values()), np.sort(bulk.values()))
        assert_charges_bounded(bulk.counter, sequential.counter)
        bulk.check_invariants()

    def test_bulk_delete_matches_sequential(self, rng):
        base, sequential, bulk = self.make_pair(rng, merge_threshold=10.0)
        for column in (sequential, bulk):
            column.bulk_insert(np.arange(901, 961, 2))
        batch = np.concatenate(
            (rng.choice(base, 20), np.arange(901, 921, 2), [9_999])
        )
        rng.shuffle(batch)
        order = np.argsort(batch, kind="stable")
        expected = []
        for value in batch[order]:
            try:
                expected.append(sequential.delete(int(value), limit=1))
            except ValueNotFoundError:
                expected.append(0)
        deleted = bulk.bulk_delete(batch)
        assert np.array_equal(deleted[order], np.asarray(expected))
        assert sequential._delta_values == bulk._delta_values
        assert sequential._tombstones == bulk._tombstones
        assert bulk.counter.snapshot() == sequential.counter.snapshot()
        bulk.check_invariants()

    def test_multi_point_query_matches_per_value(self, rng):
        base, _, column = self.make_pair(rng, merge_threshold=10.0)
        column.bulk_insert(rng.integers(0, 1_100, 30) | 1)
        column.bulk_delete(rng.choice(base, 10))
        probes = np.concatenate((rng.choice(base, 20), rng.integers(0, 1_200, 10)))
        expected = [column.point_query(int(v), return_rowids=True) for v in probes]
        before = column.counter.snapshot()
        for value in probes:
            column.point_query(int(value), return_rowids=True)
        sequential = column.counter.diff(before)
        before = column.counter.snapshot()
        hits, counts = column.multi_point_query(probes, return_rowids=True)
        assert column.counter.diff(before) == sequential
        offset = 0
        for i in range(probes.size):
            got = hits[offset : offset + int(counts[i])]
            offset += int(counts[i])
            assert np.array_equal(got, expected[i])

    def test_multi_range_count_matches_per_range(self, rng):
        base, _, column = self.make_pair(rng, merge_threshold=10.0)
        column.bulk_insert(rng.integers(0, 1_100, 30) | 1)
        column.bulk_delete(rng.choice(base, 10))
        lows = rng.integers(0, 1_000, 16)
        highs = lows + rng.integers(0, 300, 16)
        expected = [
            column.range_query(int(low), int(high), materialize=False).count
            for low, high in zip(lows, highs)
        ]
        before = column.counter.snapshot()
        for low, high in zip(lows, highs):
            column.range_query(int(low), int(high), materialize=False)
        sequential = column.counter.diff(before)
        before = column.counter.snapshot()
        counts = column.multi_range_count(lows, highs)
        assert column.counter.diff(before) == sequential
        assert list(counts) == expected


def make_table(keys, payload=None, *, kind=LayoutKind.EQUI_GV, chunk_size=512):
    spec = LayoutSpec(kind=kind, partitions=8, block_values=64)
    return Table(
        keys,
        payload,
        chunk_size=chunk_size,
        chunk_builder=layout_chunk_builder(spec),
        block_values=64,
    )


class TestTableBulkWrites:
    @pytest.mark.parametrize(
        "kind", [LayoutKind.EQUI_GV, LayoutKind.EQUI, LayoutKind.STATE_OF_ART]
    )
    def test_sorted_batch_byte_identical_to_sequential(self, rng, kind):
        keys = np.arange(2_048, dtype=np.int64) * 2
        payload = rng.integers(0, 1_000, size=(2_048, 2))
        sequential = make_table(keys, payload, kind=kind)
        bulk = make_table(keys, payload, kind=kind)
        batch = np.sort(rng.integers(0, 4_200, 64) | 1)
        rows = rng.integers(0, 100, size=(64, 2))
        expected = [
            sequential.insert(int(key), row.tolist())
            for key, row in zip(batch, rows)
        ]
        rowids = bulk.bulk_insert(batch, rows)
        assert list(rowids) == expected
        for left, right in zip(sequential.chunks, bulk.chunks):
            assert np.array_equal(left.values(), right.values())
            assert np.array_equal(left.rowids(), right.rowids())
        assert np.array_equal(
            sequential._payload[: sequential._next_rowid],
            bulk._payload[: bulk._next_rowid],
        )
        assert_charges_bounded(bulk.counter, sequential.counter)
        bulk.check_invariants()

        victims = np.sort(
            np.concatenate((batch[:20], rng.choice(keys, 30, replace=False)))
        )
        expected_deleted = []
        for key in victims:
            try:
                expected_deleted.append(sequential.delete(int(key)))
            except ValueNotFoundError:
                expected_deleted.append(0)
        deleted = bulk.bulk_delete(victims)
        assert list(deleted) == expected_deleted
        for left, right in zip(sequential.chunks, bulk.chunks):
            assert np.array_equal(left.values(), right.values())
            assert np.array_equal(left.rowids(), right.rowids())
        assert_charges_bounded(bulk.counter, sequential.counter)
        bulk.check_invariants()

    def test_unsorted_batch_assigns_rowids_in_input_order(self, rng):
        keys = np.arange(512, dtype=np.int64) * 2
        table = make_table(keys)
        batch = np.asarray([901, 3, 445, 901, 17], dtype=np.int64)
        rowids = table.bulk_insert(batch)
        assert rowids.tolist() == [512, 513, 514, 515, 516]
        for key, rowid in zip(batch, rowids):
            assert any(
                row.rowid == rowid for row in table.point_query(int(key))
            )
        table.check_invariants()

    def test_bulk_delete_reaches_duplicates_straddling_chunks(self):
        keys = np.asarray([1, 2, 3, 100, 100, 100, 100, 200, 300])
        table = Table(keys, chunk_size=4, block_values=4)
        deleted = table.bulk_delete(np.asarray([100, 100, 100, 100, 100, 7]))
        assert deleted.tolist() == [1, 1, 1, 1, 0, 0]
        assert int((table.keys() == 100).sum()) == 0
        table.check_invariants()

    def test_bulk_paths_never_rebuild_router(self, rng, monkeypatch):
        keys = np.arange(1_024, dtype=np.int64) * 2
        table = make_table(keys)

        def forbidden():
            raise AssertionError("bulk path must not rebuild the router")

        monkeypatch.setattr(table, "_rebuild_router", forbidden)
        fences_before = table.router.fences.copy()
        table.bulk_insert(rng.integers(0, 2_100, 64) | 1)
        table.bulk_delete(rng.choice(keys, 32, replace=False))
        assert np.array_equal(table.router.fences, fences_before)
        table.check_invariants()

    def test_empty_batches(self, rng):
        table = make_table(np.arange(256, dtype=np.int64) * 2)
        assert table.bulk_insert([]).size == 0
        assert table.bulk_delete([]).size == 0

    def test_payload_width_mismatch_raises(self):
        keys = np.arange(64, dtype=np.int64) * 2
        payload = np.zeros((64, 2), dtype=np.int64)
        table = make_table(keys, payload)
        with pytest.raises(LayoutError):
            table.bulk_insert([3, 5], [[1], [2, 3]])


class TestEngineBatchWrites:
    def make_engines(self):
        keys = np.arange(2_048, dtype=np.int64) * 2
        rng = np.random.default_rng(5)
        payload = rng.integers(0, 1_000, size=(2_048, 2))
        return (
            StorageEngine(make_table(keys, payload)),
            StorageEngine(make_table(keys, payload)),
        )

    def test_execute_dispatches_multi_write_operations(self):
        engine, _ = self.make_engines()
        outcome = engine.execute(MultiInsert(keys=(11, 3, 7)))
        assert outcome.kind == "multi_insert"
        assert [int(r) for r in outcome.result] == [2048, 2049, 2050]
        outcome = engine.execute(MultiDelete(keys=(11, 3, 99_999)))
        assert outcome.kind == "multi_delete"
        assert [int(c) for c in outcome.result] == [1, 1, 0]

    def test_execute_batch_groups_write_runs(self):
        batch_engine, sequential_engine = self.make_engines()
        operations = [
            Insert(key=901),
            Insert(key=3, payload=(7, 8)),
            Insert(key=445),
            PointQuery(key=901),
            Delete(key=901),
            Delete(key=77_777),
            Delete(key=4),
            PointQuery(key=901),
        ]
        expected = []
        errors = 0
        for operation in operations:
            try:
                expected.append(sequential_engine.execute(operation).result)
            except ValueNotFoundError:
                expected.append(None)
                errors += 1
        batch = batch_engine.execute_batch(operations)
        assert batch.results == expected
        assert batch.errors == errors == 1
        assert_charges_bounded(
            batch_engine.counter.snapshot(), sequential_engine.counter.snapshot()
        )
        assert np.array_equal(
            np.sort(batch_engine.table.keys()),
            np.sort(sequential_engine.table.keys()),
        )
        batch_engine.table.check_invariants()

    def test_multi_insert_payloads_validation(self):
        with pytest.raises(ValueError):
            MultiInsert(keys=(1, 2), payloads=((1, 2),))
