"""Tests for the multi-column table and the storage-engine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.engine import StorageEngine
from repro.storage.errors import LayoutError, ValueNotFoundError
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder, require_key
from repro.workload.operations import (
    Aggregate,
    Delete,
    Insert,
    PointQuery,
    RangeQuery,
    Update,
)


def make_table(num_rows=2_048, payload_columns=3, chunk_size=None, layout=LayoutKind.EQUI):
    keys = np.arange(num_rows, dtype=np.int64) * 2
    rng = np.random.default_rng(1)
    payload = rng.integers(0, 1_000, size=(num_rows, payload_columns))
    spec = LayoutSpec(kind=layout, partitions=8, block_values=64)
    return Table(
        keys,
        payload,
        chunk_size=chunk_size or num_rows,
        chunk_builder=layout_chunk_builder(spec),
        block_values=64,
    )


class TestTableConstruction:
    def test_row_and_chunk_counts(self):
        table = make_table(num_rows=2_048, chunk_size=512)
        assert table.num_rows == 2_048
        assert table.num_chunks == 4

    def test_payload_names_default(self):
        table = make_table(payload_columns=3)
        assert table.payload_names == ["a1", "a2", "a3"]

    def test_payload_shape_validation(self):
        keys = np.arange(10)
        with pytest.raises(LayoutError):
            Table(keys, np.zeros((5, 2)))

    def test_invalid_chunk_size(self):
        with pytest.raises(LayoutError):
            Table(np.arange(10), chunk_size=0)

    def test_keys_materialization(self):
        table = make_table(num_rows=512)
        assert np.array_equal(np.sort(table.keys()), np.arange(512) * 2)


class TestTableOperations:
    def test_point_query_returns_payload(self):
        table = make_table()
        rows = table.point_query(20, columns=["a1", "a2"])
        row = require_key(rows, 20)
        assert set(row.payload) == {"a1", "a2"}
        assert row.rowid == 10

    def test_point_query_unknown_column(self):
        table = make_table()
        with pytest.raises(LayoutError):
            table.point_query(20, columns=["nope"])

    def test_range_count_matches_reference(self):
        table = make_table(num_rows=1_024, chunk_size=256)
        assert table.range_count(100, 300) == 101

    def test_range_sum_matches_reference(self):
        table = make_table(num_rows=1_024)
        keys = np.arange(1_024) * 2
        rng = np.random.default_rng(1)
        payload = rng.integers(0, 1_000, size=(1_024, 3))
        mask = (keys >= 100) & (keys <= 500)
        expected = int(payload[mask][:, 0].sum())
        assert table.range_sum(100, 500, columns=["a1"]) == expected

    def test_insert_then_query(self):
        table = make_table()
        rowid = table.insert(333, payload=[7, 8, 9])
        rows = table.point_query(333)
        assert rows[0].rowid == rowid
        assert rows[0].payload["a3"] == 9

    def test_delete_removes_row(self):
        table = make_table()
        assert table.delete(40) == 1
        assert table.point_query(40) == []
        assert table.num_rows == 2_047

    def test_delete_missing_raises(self):
        table = make_table()
        with pytest.raises(ValueNotFoundError):
            table.delete(41)

    def test_update_key_same_chunk(self):
        table = make_table()
        table.update_key(40, 41)
        assert table.point_query(40) == []
        assert len(table.point_query(41)) == 1

    def test_update_key_across_chunks(self):
        table = make_table(num_rows=1_024, chunk_size=256)
        old_key, new_key = 10, 2_001
        payload_before = table.point_query(old_key)[0].payload
        table.update_key(old_key, new_key)
        rows = table.point_query(new_key)
        assert len(rows) == 1
        assert rows[0].payload == payload_before

    def test_scan_returns_all_keys(self):
        table = make_table(num_rows=512, chunk_size=128)
        assert np.array_equal(np.sort(table.scan()), np.arange(512) * 2)

    def test_require_key_raises_for_missing(self):
        with pytest.raises(ValueNotFoundError):
            require_key([], 5)

    def test_chunk_routing_of_inserts(self):
        table = make_table(num_rows=1_024, chunk_size=256)
        table.insert(3)  # belongs to the first chunk's range
        table.insert(10_001)  # beyond every chunk -> last chunk
        assert len(table.point_query(3)) == 1
        assert len(table.point_query(10_001)) == 1
        table.check_invariants()

    @pytest.mark.parametrize(
        "layout",
        [LayoutKind.NO_ORDER, LayoutKind.SORTED, LayoutKind.STATE_OF_ART, LayoutKind.EQUI_GV],
    )
    def test_operations_across_layouts(self, layout):
        table = make_table(num_rows=512, layout=layout)
        assert len(table.point_query(100)) == 1
        assert table.range_count(0, 200) == 101
        table.insert(7, payload=[1, 2, 3])
        table.delete(100)
        table.update_key(200, 201)
        assert table.point_query(100) == []
        assert len(table.point_query(201)) == 1


def make_straddle_table(chunk_size=4):
    """A table whose chunk boundary falls inside the duplicate run of 100s."""
    keys = np.asarray([1, 2, 3, 100, 100, 100, 100, 200, 300], dtype=np.int64)
    payload = np.arange(keys.shape[0], dtype=np.int64).reshape(-1, 1)
    return Table(keys, payload, chunk_size=chunk_size, block_values=4)


class TestCrossChunkDuplicates:
    """Regression: duplicate runs split across a chunk boundary (seed bug)."""

    def test_boundary_falls_inside_duplicate_run(self):
        table = make_straddle_table()
        assert table.num_chunks == 3
        # The first chunk ends inside the run: its bound equals the key.
        assert int(table.chunk_bounds[0]) == 100

    def test_point_query_returns_full_duplicate_run(self):
        table = make_straddle_table()
        rows = table.point_query(100)
        assert len(rows) == 4
        assert sorted(row.payload["a1"] for row in rows) == [3, 4, 5, 6]

    def test_repeated_delete_removes_full_duplicate_run(self):
        table = make_straddle_table()
        deleted = 0
        for _ in range(4):
            deleted += table.delete(100)
        assert deleted == 4
        assert table.point_query(100) == []
        with pytest.raises(ValueNotFoundError):
            table.delete(100)
        table.check_invariants()

    def test_update_key_finds_duplicate_beyond_first_candidate_chunk(self):
        table = make_straddle_table()
        # Exhaust the copies in the first candidate chunk, then update: the
        # remaining copies live only in the second candidate chunk.
        table.delete(100)
        table.update_key(100, 150)
        assert len(table.point_query(150)) == 1
        assert len(table.point_query(100)) == 2
        table.check_invariants()

    def test_routing_uses_partition_index(self):
        from repro.storage.partition_index import PartitionIndex

        table = make_straddle_table()
        assert isinstance(table.router, PartitionIndex)
        assert np.array_equal(table.router.fences, table.chunk_bounds)
        # The seed's O(num_chunks) linear scan is gone.
        assert not hasattr(Table, "_route")

    def test_point_routing_charges_index_probes(self):
        table = make_straddle_table()
        before = table.counter.snapshot()
        table.point_query(100)
        assert table.counter.diff(before).index_probes > 0


class TestUpdateKeyFenceConsistency:
    def test_update_key_to_same_value_same_chunk(self):
        table = make_table(num_rows=1_024, chunk_size=256)
        table.update_key(40, 40)
        assert len(table.point_query(40)) == 1
        assert table.num_rows == 1_024
        table.check_invariants()

    def test_update_key_to_same_value_on_chunk_bound(self):
        table = make_straddle_table()
        table.update_key(100, 100)
        assert len(table.point_query(100)) == 4
        table.check_invariants()

    def test_cross_chunk_move_of_key_equal_to_chunk_bound(self):
        table = make_table(num_rows=1_024, chunk_size=256)
        bound = int(table.chunk_bounds[0])
        table.update_key(bound, bound + 1_001)
        assert table.point_query(bound) == []
        assert len(table.point_query(bound + 1_001)) == 1
        table.check_invariants()

    def test_move_onto_chunk_bound_routes_to_owning_chunk(self):
        table = make_table(num_rows=1_024, chunk_size=256)
        bound = int(table.chunk_bounds[0])
        # Odd keys are absent from the loaded table; the new key equals no
        # chunk bound's own key but routes onto the first chunk's fence.
        table.update_key(bound - 2, bound)
        assert len(table.point_query(bound)) == 2
        table.check_invariants()

    def test_update_key_preserves_rowid_on_delta_store_chunks(self):
        # Regression: DeltaStoreColumn.update used to fabricate a fresh
        # column-local row id, colliding with live rows in other chunks and
        # returning another row's payload.
        keys = np.asarray([10, 20, 30, 40, 100, 110, 120, 130])
        payload = np.arange(8, dtype=np.int64).reshape(-1, 1)
        spec = LayoutSpec(kind=LayoutKind.STATE_OF_ART, block_values=64)
        table = Table(
            keys,
            payload,
            chunk_size=4,
            chunk_builder=layout_chunk_builder(spec),
            block_values=64,
        )
        table.update_key(10, 15)
        rows = table.point_query(15)
        assert [row.payload["a1"] for row in rows] == [0]
        assert [row.payload["a1"] for row in table.point_query(100)] == [4]
        table.check_invariants()

    def test_cross_chunk_update_moves_the_rowid_the_delete_picked(self):
        # Regression: with a delta-store chunk holding a key both in main and
        # in its delta buffer, the cross-chunk move must migrate the row id
        # of the copy the delete actually removes (the buffered one), not
        # the first point-query hit (the main one).
        keys = np.asarray([10, 20, 30, 40, 100, 110, 120, 130])
        payload = np.arange(8, dtype=np.int64).reshape(-1, 1)
        # A high merge trigger keeps the inserted copy in the delta buffer.
        spec = LayoutSpec(
            kind=LayoutKind.STATE_OF_ART, block_values=64, merge_entries=100
        )
        table = Table(
            keys,
            payload,
            chunk_size=4,
            chunk_builder=layout_chunk_builder(spec),
            block_values=64,
        )
        duplicate_rowid = table.insert(10, payload=[8])  # buffered copy
        table.update_key(10, 105)  # moves to the second chunk
        moved = table.point_query(105)
        assert [row.rowid for row in moved] == [duplicate_rowid]
        assert [row.payload["a1"] for row in moved] == [8]
        assert [row.payload["a1"] for row in table.point_query(10)] == [0]
        table.check_invariants()

    def test_rebuild_chunk_tightens_stale_bound(self):
        table = make_table(num_rows=1_024, chunk_size=256)
        bound = int(table.chunk_bounds[0])
        table.delete(bound)
        assert int(table.chunk_bounds[0]) == bound  # stale-high, still routable
        table.rebuild_chunk(0)
        assert int(table.chunk_bounds[0]) < bound
        table.check_invariants()


class TestStorageEngine:
    def test_measured_operation_results(self):
        engine = StorageEngine(make_table())
        outcome = engine.point_query(20)
        assert outcome.kind == "point_query"
        assert outcome.simulated_ns() > 0
        assert outcome.wall_ns > 0

    def test_statistics_accumulate(self):
        engine = StorageEngine(make_table())
        engine.point_query(20)
        engine.point_query(40)
        engine.insert(7)
        assert engine.statistics.operations["point_query"] == 2
        assert engine.statistics.operations["insert"] == 1
        assert engine.statistics.mean_simulated_ns("point_query") > 0
        assert engine.statistics.mean_simulated_ns("never_ran") == 0

    def test_execute_dispatch(self):
        engine = StorageEngine(make_table())
        assert engine.execute(PointQuery(key=20)).kind == "point_query"
        assert engine.execute(RangeQuery(low=0, high=50)).kind == "range_count"
        assert (
            engine.execute(RangeQuery(low=0, high=50, aggregate=Aggregate.SUM)).kind
            == "range_sum"
        )
        assert engine.execute(Insert(key=7)).kind == "insert"
        assert engine.execute(Delete(key=20)).kind == "delete"
        assert engine.execute(Update(old_key=40, new_key=41)).kind == "update"

    def test_execute_rejects_unknown_type(self):
        engine = StorageEngine(make_table())
        with pytest.raises(TypeError):
            engine.execute("not an operation")

    def test_full_scan(self):
        engine = StorageEngine(make_table(num_rows=256))
        outcome = engine.full_scan()
        assert outcome.result.shape[0] == 256

    def test_transactions_disabled_by_default(self):
        engine = StorageEngine(make_table())
        with pytest.raises(RuntimeError):
            engine.begin_transaction()

    def test_transactional_commit_applies_writes(self):
        engine = StorageEngine(make_table(), enable_transactions=True)
        txn = engine.begin_transaction()
        engine.transactional_insert(txn, 555, payload=[1, 2, 3])
        assert engine.table.point_query(555) == []
        engine.commit(txn)
        assert len(engine.table.point_query(555)) == 1

    def test_transactional_conflict_aborts_second_writer(self):
        from repro.storage.errors import TransactionConflictError

        engine = StorageEngine(make_table(), enable_transactions=True)
        first = engine.begin_transaction()
        second = engine.begin_transaction()
        engine.transactional_delete(first, 40)
        engine.transactional_update(second, 40, 41)
        engine.commit(first)
        with pytest.raises(TransactionConflictError):
            engine.commit(second)
