"""Batch fast path: vectorized probes vs. per-operation execution.

The contract of the batch API is *exact* equivalence with per-operation
dispatch: identical results (including row order) and identical simulated
block-access counts, just without the per-op Python overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.column import PartitionedColumn
from repro.storage.engine import StorageEngine
from repro.storage.errors import ValueNotFoundError
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.hap import HAPConfig, build_table, make_workload
from repro.workload.operations import (
    Aggregate,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    PointQuery,
    RangeQuery,
    Update,
)


@pytest.fixture
def column(rng):
    values = np.sort(rng.integers(0, 5_000, 4_096)) * 2
    boundaries = np.arange(256, 4_097, 256)
    return PartitionedColumn(
        values, boundaries, block_values=64, track_rowids=True
    )


class TestColumnBatchProbes:
    def test_multi_point_query_matches_per_value(self, column, rng):
        probes = np.concatenate(
            (rng.integers(0, 10_001, 256), column.values()[:32])
        )
        expected = [column.point_query(int(value)) for value in probes]
        before = column.counter.snapshot()
        for value in probes:
            column.point_query(int(value))
        sequential = column.counter.diff(before)

        before = column.counter.snapshot()
        hits, counts = column.multi_point_query(probes)
        batched = column.counter.diff(before)
        assert batched == sequential
        offset = 0
        for i, value in enumerate(probes):
            got = hits[offset : offset + int(counts[i])]
            offset += int(counts[i])
            assert np.array_equal(got, expected[i]), f"mismatch for {value}"
        assert offset == hits.shape[0]

    def test_multi_point_query_rowids(self, column):
        value = int(column.values()[100])
        hits, counts = column.multi_point_query([value], return_rowids=True)
        assert np.array_equal(
            hits, column.point_query(value, return_rowids=True)
        )
        assert int(counts[0]) == hits.shape[0]

    def test_multi_range_count_matches_per_range(self, column, rng):
        lows = rng.integers(0, 9_000, 128)
        highs = lows + rng.integers(0, 2_000, 128)
        expected = [
            column.range_query(int(low), int(high), materialize=False).count
            for low, high in zip(lows, highs)
        ]
        before = column.counter.snapshot()
        for low, high in zip(lows, highs):
            column.range_query(int(low), int(high), materialize=False)
        sequential = column.counter.diff(before)

        before = column.counter.snapshot()
        counts = column.multi_range_count(lows, highs)
        batched = column.counter.diff(before)
        assert batched == sequential
        assert list(counts) == expected

    def test_batch_probes_after_mutation(self, column, rng):
        # Inserts/deletes leave partitions unsorted internally; the batch
        # probes must fall back to sorted views and stay exact.
        for value in rng.integers(0, 10_000, 64):
            column.insert(int(value) * 2 + 1)
        for value in column.values()[:16]:
            column.delete(int(value))
        probes = np.concatenate((column.values()[:64], [1, 3, 9_999]))
        expected = [column.point_query(int(value)) for value in probes]
        hits, counts = column.multi_point_query(probes)
        offset = 0
        for i in range(probes.shape[0]):
            got = hits[offset : offset + int(counts[i])]
            offset += int(counts[i])
            assert set(got.tolist()) == set(expected[i].tolist())

    def test_multi_range_count_validates_bounds(self, column):
        with pytest.raises(ValueError):
            column.multi_range_count([10], [5])

    def test_empty_batches(self, column):
        hits, counts = column.multi_point_query([])
        assert hits.size == 0 and counts.size == 0
        assert column.multi_range_count([], []).size == 0


def make_multi_chunk_table(num_rows=2_048, chunk_size=512):
    keys = np.arange(num_rows, dtype=np.int64) * 2
    rng = np.random.default_rng(5)
    payload = rng.integers(0, 1_000, size=(num_rows, 2))
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=8, block_values=64)
    return Table(
        keys,
        payload,
        chunk_size=chunk_size,
        chunk_builder=layout_chunk_builder(spec),
        block_values=64,
    )


class TestTableBatchQueries:
    def test_multi_point_query_matches_per_key(self, rng):
        table = make_multi_chunk_table()
        probes = rng.integers(0, 4_100, 200)
        expected = [table.point_query(int(key)) for key in probes]
        before = table.counter.snapshot()
        for key in probes:
            table.point_query(int(key))
        sequential = table.counter.diff(before)
        before = table.counter.snapshot()
        batched_rows = table.multi_point_query(probes)
        batched = table.counter.diff(before)
        assert batched == sequential
        assert batched_rows == expected

    def test_multi_point_query_straddling_duplicates(self):
        keys = np.asarray([1, 2, 3, 100, 100, 100, 100, 200, 300])
        table = Table(keys, chunk_size=4, block_values=4)
        rows = table.multi_point_query([100, 1, 999])
        assert [len(found) for found in rows] == [4, 1, 0]
        assert rows[0] == table.point_query(100)

    def test_multi_range_count_matches_per_range(self, rng):
        table = make_multi_chunk_table()
        lows = rng.integers(0, 4_000, 100)
        highs = lows + rng.integers(0, 600, 100)
        expected = [
            table.range_count(int(low), int(high))
            for low, high in zip(lows, highs)
        ]
        before = table.counter.snapshot()
        for low, high in zip(lows, highs):
            table.range_count(int(low), int(high))
        sequential = table.counter.diff(before)
        before = table.counter.snapshot()
        counts = table.multi_range_count(list(zip(lows, highs)))
        batched = table.counter.diff(before)
        assert batched == sequential
        assert list(counts) == expected

    def test_multi_point_query_selects_columns(self):
        table = make_multi_chunk_table()
        rows = table.multi_point_query([20], columns=["a2"])
        assert set(rows[0][0].payload) == {"a2"}


class TestExecuteBatch:
    def make_engines(self):
        config = HAPConfig(
            num_rows=4_096, chunk_size=1_024, block_values=256, payload_columns=3
        )
        spec = LayoutSpec(kind=LayoutKind.EQUI_GV, partitions=8, block_values=256)
        builder = layout_chunk_builder(spec)
        return (
            StorageEngine(build_table(config, builder)),
            StorageEngine(build_table(config, builder)),
            config,
        )

    def test_mixed_hap_workload_identical_results_and_accesses(self):
        sequential_engine, batch_engine, config = self.make_engines()
        workload = make_workload(
            "hybrid_skewed", config, num_operations=600, seed=21
        )
        sequential_results = []
        sequential_errors = 0
        for operation in workload:
            try:
                sequential_results.append(
                    sequential_engine.execute(operation).result
                )
            except ValueNotFoundError:
                sequential_results.append(None)
                sequential_errors += 1
        batch = batch_engine.execute_batch(list(workload))

        assert batch.operations == len(workload)
        assert batch.errors == sequential_errors
        assert batch.results == sequential_results
        # Grouped reads charge identically; grouped insert runs coalesce
        # ripple/placement charges, so each tally is bounded by the
        # sequential one and the probe count matches exactly.  (Both the
        # result and <= comparisons rely on hybrid_skewed's structure: no
        # deletes, and the generator's inserted keys are fresh and unique,
        # so the bulk path's ascending in-run replay cannot pick different
        # duplicate victims or charge larger miss scans than submission
        # order -- see StorageEngine.execute_batch's duplicate-key caveat.)
        batch_counts = batch_engine.counter.snapshot()
        sequential_counts = sequential_engine.counter.snapshot()
        assert batch_counts.index_probes == sequential_counts.index_probes
        for field in ("random_reads", "random_writes", "seq_reads", "seq_writes"):
            assert getattr(batch_counts, field) <= getattr(sequential_counts, field)
        assert np.array_equal(
            np.sort(batch_engine.table.keys()),
            np.sort(sequential_engine.table.keys()),
        )
        batch_engine.table.check_invariants()

    def test_batch_dispatch_of_multi_operations(self):
        engine, _, _ = self.make_engines()
        outcome = engine.execute(MultiPointQuery(keys=(20, 40, 99_999)))
        assert outcome.kind == "multi_point_query"
        assert [len(rows) for rows in outcome.result] == [1, 1, 0]
        outcome = engine.execute(MultiRangeCount(bounds=((0, 100), (50, 60))))
        assert outcome.kind == "multi_range_count"
        assert list(outcome.result) == [
            engine.table.range_count(0, 100),
            engine.table.range_count(50, 60),
        ]

    def test_execute_batch_groups_only_compatible_point_queries(self):
        engine, reference, _ = self.make_engines()
        operations = [
            PointQuery(key=20, columns=("a1",)),
            PointQuery(key=40, columns=("a2",)),
            RangeQuery(low=0, high=50),
            RangeQuery(low=10, high=90, aggregate=Aggregate.SUM),
            RangeQuery(low=0, high=10),
        ]
        batch = engine.execute_batch(operations)
        expected = [reference.execute(operation).result for operation in operations]
        assert batch.results == expected
        assert engine.counter.snapshot() == reference.counter.snapshot()

    def test_execute_batch_empty(self):
        engine, _, _ = self.make_engines()
        batch = engine.execute_batch([])
        assert batch.results == [] and batch.operations == 0


class TestMultiUpdate:
    """Grouped key updates are *exactly* per-op equivalent (no coalescing)."""

    def test_update_run_matches_per_op_dispatch_exactly(self):
        # Straddling duplicates, a cross-chunk move, an in-place rewrite and
        # a miss, all in one run.
        def build():
            keys = np.asarray([1, 2, 3, 100, 100, 100, 100, 200, 300])
            return StorageEngine(Table(keys, chunk_size=4, block_values=4))

        sequential, batched = build(), build()
        updates = [
            Update(old_key=100, new_key=5),
            Update(old_key=2, new_key=250),
            Update(old_key=999, new_key=1),  # miss
            Update(old_key=100, new_key=100),
            Update(old_key=300, new_key=301),
        ]
        sequential_results = []
        sequential_errors = 0
        for operation in updates:
            try:
                sequential_results.append(
                    sequential.execute(operation).result
                )
            except ValueNotFoundError:
                sequential_results.append(None)
                sequential_errors += 1
        batch = batched.execute_batch(updates)
        assert batch.results == sequential_results
        assert batch.errors == sequential_errors
        assert batched.counter.snapshot() == sequential.counter.snapshot()
        assert np.array_equal(
            np.sort(batched.table.keys()), np.sort(sequential.table.keys())
        )
        batched.table.check_invariants()

    def test_multi_update_dispatch_and_statistics(self):
        keys = np.arange(64, dtype=np.int64) * 2
        engine = StorageEngine(Table(keys, chunk_size=32, block_values=8))
        outcome = engine.execute(MultiUpdate(pairs=((10, 11), (9_999, 1))))
        assert outcome.kind == "multi_update"
        assert list(outcome.result) == [1, 0]
        assert engine.statistics.operations["multi_update"] == 1
        assert engine.statistics.mean_wall_ns("multi_update") > 0.0

    def test_bulk_update_validates_shape(self):
        keys = np.arange(16, dtype=np.int64) * 2
        table = Table(keys, chunk_size=16, block_values=8)
        with pytest.raises(Exception):
            table.bulk_update([(1, 2, 3)])
        assert table.bulk_update([]).size == 0

    def test_multi_update_pairs_validated(self):
        with pytest.raises(ValueError):
            MultiUpdate(pairs=((1, 2, 3),))
