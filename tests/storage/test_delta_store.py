"""Tests for the delta-store (state-of-the-art comparator) column."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.delta_store import DeltaStoreColumn
from repro.storage.errors import ValueNotFoundError


@pytest.fixture
def column(small_values):
    return DeltaStoreColumn(small_values, block_values=64, merge_threshold=0.05)


class TestReads:
    def test_point_query_hits_main(self, column, small_values):
        assert column.point_query(int(small_values[7])).shape[0] == 1

    def test_point_query_hits_delta(self, column, small_values):
        value = int(small_values[-1]) + 3
        column.insert(value)
        assert column.point_query(value).shape[0] == 1

    def test_range_query_combines_main_and_delta(self, column, small_values):
        low, high = int(small_values[10]), int(small_values[20])
        baseline = column.range_query(low, high).count
        column.insert(low + 1)
        assert column.range_query(low, high).count == baseline + 1

    def test_range_query_respects_tombstones(self, column, small_values):
        low, high = int(small_values[10]), int(small_values[20])
        baseline = column.range_query(low, high).count
        column.delete(int(small_values[15]))
        assert column.range_query(low, high).count == baseline - 1

    def test_range_rowids(self, small_values):
        column = DeltaStoreColumn(small_values, block_values=64, track_rowids=True)
        rowids = column.range_rowids(int(small_values[3]), int(small_values[5]))
        assert sorted(rowids.tolist()) == [3, 4, 5]


class TestWrites:
    def test_insert_goes_to_delta(self, column):
        column.insert(99999)
        assert column.delta_size == 1

    def test_insert_charges_single_write(self, column):
        column.counter.reset()
        column.insert(99999)
        assert column.counter.random_writes == 1

    def test_delete_from_delta(self, column):
        column.insert(99999)
        column.delete(99999)
        assert column.point_query(99999).shape[0] == 0

    def test_delete_from_main_uses_tombstone(self, column, small_values):
        size_before = column.size
        column.delete(int(small_values[3]))
        assert column.size == size_before - 1
        assert column.point_query(int(small_values[3])).shape[0] == 0

    def test_delete_missing_raises(self, column, small_values):
        with pytest.raises(ValueNotFoundError):
            column.delete(int(small_values[3]) + 1)

    def test_update_moves_value(self, column, small_values):
        old = int(small_values[9])
        column.update(old, 77777)
        assert column.point_query(old).shape[0] == 0
        assert column.point_query(77777).shape[0] == 1

    def test_size_accounts_for_delta_and_tombstones(self, column, small_values):
        base = column.size
        column.insert(11111)
        column.delete(int(small_values[0]))
        assert column.size == base


class TestMerge:
    def test_merge_triggered_by_threshold(self, small_values):
        column = DeltaStoreColumn(small_values, block_values=64, merge_threshold=0.01)
        threshold = max(1, int(0.01 * small_values.size))
        for i in range(threshold + 1):
            column.insert(200_001 + 2 * i)
        assert column.merges >= 1
        assert column.delta_size < threshold

    def test_merge_preserves_values(self, small_values):
        column = DeltaStoreColumn(small_values, block_values=64, merge_threshold=0.5)
        inserted = [300_001, 300_003, 300_005]
        for value in inserted:
            column.insert(value)
        column.delete(int(small_values[0]))
        column.merge()
        expected = sorted(small_values.tolist()[1:] + inserted)
        assert sorted(column.values().tolist()) == expected
        column.check_invariants()

    def test_merge_charges_full_rewrite(self, small_values):
        column = DeltaStoreColumn(small_values, block_values=64, merge_threshold=0.5)
        column.insert(1)
        column.counter.reset()
        column.merge()
        assert column.counter.seq_reads > 0
        assert column.counter.seq_writes > 0

    def test_merge_preserves_rowids(self, small_values):
        column = DeltaStoreColumn(
            small_values, block_values=64, merge_threshold=0.5, track_rowids=True
        )
        column.insert(400_001)
        column.merge()
        rowids = column.point_query(400_001, return_rowids=True)
        assert rowids.tolist() == [small_values.size]

    def test_memory_amplification_accounts_for_tombstones(self, column, small_values):
        # Tombstoned main-resident rows keep their physical slot but are no
        # longer live, so memory amplification rises above 1.
        for i in range(10):
            column.delete(int(small_values[i]))
        assert column.memory_amplification > 1.0
