"""Tests for the partitioned column chunk (ripples, ghosts, invariants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.column import (
    PartitionedColumn,
    equal_width_boundaries,
    snap_boundaries_to_duplicates,
)
from repro.storage.cost_accounting import AccessCounter
from repro.storage.errors import LayoutError, ValueNotFoundError
from repro.storage.ghost_values import spread_evenly


def build_column(values, partitions=8, block_values=64, ghosts=0, **kwargs):
    values = np.asarray(values, dtype=np.int64)
    boundaries = equal_width_boundaries(values.size, partitions)
    ghost_allocation = None
    if ghosts:
        ghost_allocation = spread_evenly(ghosts, boundaries.shape[0])
    return PartitionedColumn(
        values,
        boundaries,
        block_values=block_values,
        ghost_allocation=ghost_allocation,
        dense=ghost_allocation is None,
        **kwargs,
    )


class TestConstruction:
    def test_single_partition_by_default(self, small_values):
        column = PartitionedColumn(small_values)
        assert column.num_partitions == 1
        assert column.size == small_values.size

    def test_partition_counts_sum_to_size(self, small_values):
        column = build_column(small_values, partitions=8)
        assert column.partition_counts().sum() == small_values.size

    def test_rejects_unsorted_input(self):
        with pytest.raises(LayoutError):
            PartitionedColumn(np.array([3, 1, 2]))

    def test_rejects_bad_block_size(self, small_values):
        with pytest.raises(LayoutError):
            PartitionedColumn(small_values, block_values=0)

    def test_rejects_mismatched_ghost_allocation(self, small_values):
        boundaries = equal_width_boundaries(small_values.size, 4)
        with pytest.raises(LayoutError):
            PartitionedColumn(small_values, boundaries, ghost_allocation=[1, 2])

    def test_ghost_allocation_reflected_in_capacity(self, small_values):
        column = build_column(small_values, partitions=4, ghosts=40)
        assert column.physical_size == small_values.size + 40
        assert column.ghost_counts().sum() == 40

    def test_memory_amplification(self, small_values):
        column = build_column(small_values, partitions=4, ghosts=small_values.size // 10)
        assert column.memory_amplification == pytest.approx(1.1, abs=0.01)

    def test_empty_column(self):
        column = PartitionedColumn(np.empty(0, dtype=np.int64))
        assert column.size == 0
        rowid = column.insert(42)
        assert rowid == 0
        assert column.size == 1

    def test_values_materialization_preserves_multiset(self, medium_values):
        column = build_column(medium_values, partitions=16)
        assert np.array_equal(np.sort(column.values()), np.sort(medium_values))

    def test_duplicates_stay_in_one_partition(self):
        values = np.asarray([1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3], dtype=np.int64)
        boundaries = snap_boundaries_to_duplicates(values, [3, 6, 9, 12])
        column = PartitionedColumn(values, boundaries)
        for meta in column.partition_metadata():
            if meta.count == 0:
                continue
        # A point query for any duplicated value returns every occurrence.
        assert column.point_query(2).shape[0] == 6

    def test_partition_metadata_bounds(self, small_values):
        column = build_column(small_values, partitions=4)
        metadata = column.partition_metadata()
        assert len(metadata) == 4
        for first, second in zip(metadata, metadata[1:]):
            assert first.high <= second.low


class TestSnapBoundaries:
    def test_snapping_moves_boundary_past_duplicates(self):
        values = np.asarray([1, 2, 2, 2, 3, 4])
        snapped = snap_boundaries_to_duplicates(values, [2, 6])
        assert snapped.tolist() == [4, 6]

    def test_snapping_drops_collapsed_boundaries(self):
        values = np.asarray([5] * 10)
        snapped = snap_boundaries_to_duplicates(values, [2, 5, 10])
        assert snapped.tolist() == [10]

    def test_snapping_requires_valid_range(self):
        with pytest.raises(LayoutError):
            snap_boundaries_to_duplicates(np.asarray([1, 2]), [5])

    def test_final_boundary_always_present(self):
        values = np.arange(10)
        snapped = snap_boundaries_to_duplicates(values, [4])
        assert snapped[-1] == 10


class TestEqualWidthBoundaries:
    def test_number_of_partitions(self):
        boundaries = equal_width_boundaries(100, 4)
        assert boundaries.shape[0] == 4
        assert boundaries[-1] == 100

    def test_more_partitions_than_values(self):
        boundaries = equal_width_boundaries(3, 10)
        assert boundaries[-1] == 3
        assert np.all(np.diff(boundaries) > 0)

    def test_invalid_partition_count(self):
        with pytest.raises(LayoutError):
            equal_width_boundaries(100, 0)


class TestPointQuery:
    def test_finds_existing_value(self, small_values):
        column = build_column(small_values, partitions=8)
        positions = column.point_query(int(small_values[100]))
        assert positions.shape[0] == 1

    def test_missing_value_returns_empty(self, small_values):
        column = build_column(small_values, partitions=8)
        assert column.point_query(int(small_values[10]) + 1).shape[0] == 0

    def test_returns_rowids_when_tracked(self, small_values):
        column = build_column(small_values, partitions=8, track_rowids=True)
        rowids = column.point_query(int(small_values[5]), return_rowids=True)
        assert rowids.tolist() == [5]

    def test_rowids_require_tracking(self, small_values):
        column = build_column(small_values, partitions=8)
        with pytest.raises(LayoutError):
            column.point_query(int(small_values[5]), return_rowids=True)

    def test_charges_one_random_read_for_single_block_partition(self, small_values):
        column = build_column(small_values, partitions=32, block_values=64)
        column.counter.reset()
        column.point_query(int(small_values[0]))
        assert column.counter.random_reads == 1
        assert column.counter.seq_reads == 0

    def test_charges_sequential_reads_for_wide_partition(self, small_values):
        column = build_column(small_values, partitions=1, block_values=64)
        column.counter.reset()
        column.point_query(int(small_values[0]))
        assert column.counter.random_reads == 1
        assert column.counter.seq_reads == small_values.size // 64 - 1


class TestRangeQuery:
    def test_counts_inclusive_range(self, small_values):
        column = build_column(small_values, partitions=8)
        result = column.range_query(int(small_values[10]), int(small_values[20]))
        assert result.count == 11

    def test_matches_numpy_reference(self, medium_values, rng):
        column = build_column(medium_values, partitions=16)
        for _ in range(20):
            low, high = sorted(rng.integers(0, int(medium_values[-1]), 2).tolist())
            expected = int(((medium_values >= low) & (medium_values <= high)).sum())
            assert column.range_query(low, high).count == expected

    def test_invalid_range_raises(self, small_values):
        column = build_column(small_values)
        with pytest.raises(ValueError):
            column.range_query(10, 5)

    def test_materialized_values_are_in_range(self, medium_values):
        column = build_column(medium_values, partitions=16)
        low, high = int(medium_values[100]), int(medium_values[4_000])
        result = column.range_query(low, high, materialize=True)
        assert result.values is not None
        assert np.all((result.values >= low) & (result.values <= high))

    def test_count_only_mode_skips_materialization(self, medium_values):
        column = build_column(medium_values, partitions=16)
        result = column.range_query(0, int(medium_values[-1]), materialize=False)
        assert result.positions is None
        assert result.count == medium_values.size

    def test_middle_partitions_charged_sequentially(self, small_values):
        column = build_column(small_values, partitions=8, block_values=64)
        column.counter.reset()
        column.range_query(int(small_values[0]), int(small_values[-1]))
        assert column.counter.random_reads == 1
        assert column.counter.seq_reads >= 7

    def test_range_rowids(self, small_values):
        column = build_column(small_values, partitions=8, track_rowids=True)
        rowids = column.range_rowids(int(small_values[3]), int(small_values[7]))
        assert sorted(rowids.tolist()) == [3, 4, 5, 6, 7]


class TestInsert:
    def test_insert_into_dense_column_grows(self, small_values):
        column = build_column(small_values, partitions=4)
        size_before = column.size
        column.insert(int(small_values[50]) + 1)
        assert column.size == size_before + 1
        column.check_invariants()

    def test_insert_lands_in_correct_partition(self, small_values):
        column = build_column(small_values, partitions=4, ghosts=100)
        value = int(small_values[small_values.size // 2]) + 1
        column.insert(value)
        assert column.point_query(value).shape[0] == 1
        column.check_invariants()

    def test_insert_with_local_ghost_slot_is_cheap(self, small_values):
        column = build_column(small_values, partitions=8, ghosts=80)
        column.counter.reset()
        column.insert(int(small_values[10]) + 1)
        # One read/write pair: no rippling thanks to the local ghost slot.
        assert column.counter.random_reads == 1
        assert column.counter.random_writes == 1

    def test_insert_without_ghosts_ripples(self, small_values):
        column = build_column(small_values, partitions=8)
        column.counter.reset()
        column.insert(int(small_values[10]) + 1)
        # Rippling touches one block per trailing partition.
        assert column.counter.random_writes > 1
        column.check_invariants()

    def test_insert_beyond_max_goes_to_last_partition(self, small_values):
        column = build_column(small_values, partitions=4, ghosts=40)
        value = int(small_values[-1]) + 100
        column.insert(value)
        metadata = column.partition_metadata()
        assert metadata[-1].high == value

    def test_insert_returns_sequential_rowids(self, small_values):
        column = build_column(small_values, partitions=4, track_rowids=True, ghosts=16)
        first = column.insert(int(small_values[4]) + 1)
        second = column.insert(int(small_values[8]) + 1)
        assert second == first + 1

    def test_many_inserts_preserve_multiset(self, small_values, rng):
        column = build_column(small_values, partitions=8, ghosts=64)
        inserted = []
        for _ in range(200):
            value = int(rng.integers(0, int(small_values[-1]) + 10)) | 1
            column.insert(value)
            inserted.append(value)
        expected = np.sort(np.concatenate((small_values, np.asarray(inserted))))
        assert np.array_equal(np.sort(column.values()), expected)
        column.check_invariants()


class TestDelete:
    def test_delete_removes_value(self, small_values):
        column = build_column(small_values, partitions=8)
        column.delete(int(small_values[17]))
        assert column.point_query(int(small_values[17])).shape[0] == 0
        assert column.size == small_values.size - 1
        column.check_invariants()

    def test_delete_missing_value_raises(self, small_values):
        column = build_column(small_values, partitions=8)
        with pytest.raises(ValueNotFoundError):
            column.delete(int(small_values[17]) + 1)

    def test_delete_in_ghost_mode_creates_slack(self, small_values):
        column = build_column(small_values, partitions=8, ghosts=8)
        slack_before = column.ghost_counts().sum()
        column.delete(int(small_values[100]))
        assert column.ghost_counts().sum() == slack_before + 1
        column.check_invariants()

    def test_delete_in_dense_mode_ripples_hole_to_end(self, small_values):
        column = build_column(small_values, partitions=8)
        column.delete(int(small_values[0]))
        ghosts = column.ghost_counts()
        assert ghosts[:-1].sum() == 0
        assert ghosts[-1] == 1
        column.check_invariants()

    def test_delete_duplicates_with_limit(self):
        values = np.asarray([1, 1, 1, 2, 3, 4, 5, 6], dtype=np.int64)
        column = PartitionedColumn(values, [4, 8])
        assert column.delete(1, limit=2) == 2
        assert column.point_query(1).shape[0] == 1

    def test_delete_then_insert_reuses_slack(self, small_values):
        column = build_column(small_values, partitions=8, ghosts=8)
        column.delete(int(small_values[100]))
        column.counter.reset()
        column.insert(int(small_values[100]) | 1)
        assert column.counter.random_writes == 1
        column.check_invariants()


class TestUpdate:
    def test_update_moves_value(self, small_values):
        column = build_column(small_values, partitions=8, ghosts=16)
        old = int(small_values[10])
        new = int(small_values[1_000]) + 1
        column.update(old, new)
        assert column.point_query(old).shape[0] == 0
        assert column.point_query(new).shape[0] == 1
        assert column.size == small_values.size
        column.check_invariants()

    def test_update_backward(self, small_values):
        column = build_column(small_values, partitions=8, ghosts=16)
        old = int(small_values[1_000])
        new = int(small_values[10]) + 1
        column.update(old, new)
        assert column.point_query(new).shape[0] == 1
        column.check_invariants()

    def test_update_within_same_partition(self, small_values):
        column = build_column(small_values, partitions=4, ghosts=16)
        old = int(small_values[10])
        new = old + 1
        column.update(old, new)
        assert column.point_query(new).shape[0] == 1
        column.check_invariants()

    def test_update_missing_value_raises(self, small_values):
        column = build_column(small_values, partitions=4)
        with pytest.raises(ValueNotFoundError):
            column.update(int(small_values[0]) + 1, 10)

    def test_update_preserves_rowid(self, small_values):
        column = build_column(small_values, partitions=8, ghosts=16, track_rowids=True)
        old = int(small_values[42])
        new = int(small_values[-1]) + 1
        column.update(old, new)
        assert column.point_query(new, return_rowids=True).tolist() == [42]

    def test_dense_update_ripples(self, small_values):
        column = build_column(small_values, partitions=8)
        old = int(small_values[10])
        new = int(small_values[-1]) + 1
        column.counter.reset()
        column.update(old, new)
        assert column.counter.random_writes > 2
        column.check_invariants()


class TestFullScan:
    def test_full_scan_returns_all_values(self, small_values):
        column = build_column(small_values, partitions=8)
        assert np.array_equal(np.sort(column.full_scan()), small_values)

    def test_full_scan_charges_sequential_reads(self, small_values):
        column = build_column(small_values, partitions=8, block_values=64)
        column.counter.reset()
        column.full_scan()
        assert column.counter.seq_reads == small_values.size // 64


class TestSharedCounter:
    def test_external_counter_is_used(self, small_values):
        counter = AccessCounter()
        column = build_column(small_values, partitions=8, counter=counter)
        column.point_query(int(small_values[0]))
        assert counter.total_blocks > 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    partitions=st.integers(1, 12),
    ghosts=st.integers(0, 64),
    operations=st.integers(5, 60),
)
def test_random_operation_sequences_preserve_integrity(seed, partitions, ghosts, operations):
    """Property test: any operation sequence preserves the column's invariants
    and its live multiset matches a plain Python reference implementation."""
    rng = np.random.default_rng(seed)
    base = np.sort(rng.integers(0, 5_000, 300)) * 2
    column = build_column(base, partitions=partitions, ghosts=ghosts, block_values=32)
    reference = sorted(base.tolist())
    for _ in range(operations):
        action = rng.integers(0, 4)
        if action == 0:  # insert
            value = int(rng.integers(0, 10_000)) | 1
            column.insert(value)
            reference.append(value)
        elif action == 1 and reference:  # delete existing
            victim = reference[int(rng.integers(0, len(reference)))]
            deleted = column.delete(int(victim), limit=1)
            assert deleted == 1
            reference.remove(victim)
        elif action == 2 and reference:  # update existing
            victim = reference[int(rng.integers(0, len(reference)))]
            new_value = int(rng.integers(0, 10_000)) | 1
            column.update(int(victim), new_value)
            reference.remove(victim)
            reference.append(new_value)
        else:  # point query of an arbitrary value
            probe = int(rng.integers(0, 10_000))
            expected = reference.count(probe)
            assert column.point_query(probe).shape[0] == expected
    column.check_invariants()
    assert sorted(column.values().tolist()) == sorted(reference)
