"""Tests for the six layout operation modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.column import PartitionedColumn
from repro.storage.delta_store import DeltaStoreColumn
from repro.storage.errors import LayoutError
from repro.storage.layouts import (
    DESIGN_SPACE,
    BufferingMode,
    DataOrganization,
    LayoutKind,
    LayoutSpec,
    UpdatePolicy,
    build_column,
)


@pytest.fixture
def values(small_values):
    return small_values


class TestDesignSpace:
    def test_every_mode_has_a_design_point(self):
        assert set(DESIGN_SPACE) == set(LayoutKind)

    def test_state_of_art_uses_global_buffering(self):
        point = DESIGN_SPACE[LayoutKind.STATE_OF_ART]
        assert point.organization is DataOrganization.SORTED
        assert point.update_policy is UpdatePolicy.OUT_OF_PLACE
        assert point.buffering is BufferingMode.GLOBAL

    def test_casper_uses_per_partition_buffering(self):
        point = DESIGN_SPACE[LayoutKind.CASPER]
        assert point.buffering is BufferingMode.PER_PARTITION


class TestBuildColumn:
    def test_no_order_has_single_partition(self, values):
        column = build_column(LayoutSpec(kind=LayoutKind.NO_ORDER, block_values=64), values)
        assert isinstance(column, PartitionedColumn)
        assert column.num_partitions == 1

    def test_sorted_has_one_partition_per_block(self, values):
        column = build_column(LayoutSpec(kind=LayoutKind.SORTED, block_values=64), values)
        assert column.num_partitions == values.size // 64

    def test_state_of_art_is_delta_store(self, values):
        column = build_column(
            LayoutSpec(kind=LayoutKind.STATE_OF_ART, block_values=64), values
        )
        assert isinstance(column, DeltaStoreColumn)

    def test_equi_partition_count(self, values):
        column = build_column(
            LayoutSpec(kind=LayoutKind.EQUI, partitions=16, block_values=64), values
        )
        assert column.num_partitions == 16
        assert column.ghost_counts().sum() == 0

    def test_equi_gv_allocates_ghosts(self, values):
        column = build_column(
            LayoutSpec(
                kind=LayoutKind.EQUI_GV,
                partitions=16,
                ghost_fraction=0.01,
                block_values=64,
            ),
            values,
        )
        assert column.ghost_counts().sum() == int(round(values.size * 0.01))

    def test_casper_requires_boundaries(self, values):
        with pytest.raises(LayoutError):
            build_column(LayoutSpec(kind=LayoutKind.CASPER, block_values=64), values)

    def test_casper_with_explicit_boundaries(self, values):
        spec = LayoutSpec(
            kind=LayoutKind.CASPER,
            block_values=64,
            boundaries=(256, 512, values.size),
            ghost_allocation=(4, 4, 8),
        )
        column = build_column(spec, values)
        assert column.num_partitions == 3
        assert column.ghost_counts().tolist() == [4, 4, 8]

    def test_rowids_passthrough(self, values):
        rowids = np.arange(100, 100 + values.size)
        column = build_column(
            LayoutSpec(kind=LayoutKind.EQUI, partitions=4, block_values=64),
            values,
            track_rowids=True,
            rowids=rowids,
        )
        assert column.point_query(int(values[0]), return_rowids=True).tolist() == [100]

    @pytest.mark.parametrize(
        "kind",
        [
            LayoutKind.NO_ORDER,
            LayoutKind.SORTED,
            LayoutKind.STATE_OF_ART,
            LayoutKind.EQUI,
            LayoutKind.EQUI_GV,
        ],
    )
    def test_all_modes_support_basic_operations(self, values, kind):
        column = build_column(
            LayoutSpec(kind=kind, partitions=8, block_values=64), values
        )
        probe = int(values[11])
        assert column.point_query(probe).shape[0] == 1
        assert column.range_query(probe, probe + 10).count >= 1
        column.insert(probe + 1)
        column.delete(probe)
        column.update(int(values[20]), probe + 3)
        assert column.point_query(probe).shape[0] == 0
        assert column.point_query(probe + 1).shape[0] == 1
        column.check_invariants()

    @pytest.mark.parametrize(
        "kind", [LayoutKind.NO_ORDER, LayoutKind.SORTED, LayoutKind.EQUI]
    )
    def test_size_preserved_across_modes(self, values, kind):
        column = build_column(
            LayoutSpec(kind=kind, partitions=8, block_values=64), values
        )
        assert column.size == values.size
