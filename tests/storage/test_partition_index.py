"""Tests for the shallow partition index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.partition_index import PartitionIndex


@pytest.fixture
def index():
    idx = PartitionIndex(fanout=4)
    idx.rebuild([10, 20, 30, 40, 50])
    return idx


class TestLocate:
    def test_exact_fence_value(self, index):
        assert index.locate(20) == 1

    def test_value_between_fences(self, index):
        assert index.locate(25) == 2

    def test_value_below_all(self, index):
        assert index.locate(-5) == 0

    def test_value_above_all_routes_to_last(self, index):
        assert index.locate(1000) == 4

    def test_empty_index_raises(self):
        with pytest.raises(IndexError):
            PartitionIndex().locate(1)


class TestLocateRange:
    def test_range_within_one_partition(self, index):
        assert index.locate_range(21, 25) == (2, 2)

    def test_range_spanning_partitions(self, index):
        assert index.locate_range(15, 45) == (1, 4)

    def test_range_beyond_domain(self, index):
        assert index.locate_range(100, 200) == (4, 4)

    def test_invalid_range(self, index):
        with pytest.raises(ValueError):
            index.locate_range(5, 1)


class TestDuplicateFences:
    """Equal neighbouring fences mark duplicate runs spanning partitions."""

    @pytest.fixture
    def dup_index(self):
        idx = PartitionIndex(fanout=4)
        idx.rebuild([5, 5, 5, 9, 12])
        return idx

    def test_locate_returns_first_candidate(self, dup_index):
        assert dup_index.locate(5) == 0

    def test_locate_all_spans_equal_fence_run_and_successor(self, dup_index):
        # Partitions 0-2 share the fence; partition 3 may start with the same
        # value when the run straddles the boundary.
        assert dup_index.locate_all(5) == (0, 3)

    def test_locate_all_single_partition_between_fences(self, dup_index):
        assert dup_index.locate_all(7) == (3, 3)

    def test_locate_all_on_last_fence(self, dup_index):
        assert dup_index.locate_all(12) == (4, 4)

    def test_locate_all_beyond_domain(self, dup_index):
        assert dup_index.locate_all(100) == (4, 4)

    def test_locate_range_high_on_equal_fences_spans_full_run(self, dup_index):
        # side="left" on the high fence used to stop at partition 0,
        # under-spanning the duplicate run.
        assert dup_index.locate_range(5, 5) == (0, 3)

    def test_locate_range_high_on_unique_fence_includes_successor(self):
        idx = PartitionIndex()
        idx.rebuild([10, 20, 30])
        assert idx.locate_range(15, 20) == (1, 2)

    def test_locate_range_strictly_between_fences_is_tight(self, dup_index):
        assert dup_index.locate_range(6, 8) == (3, 3)

    def test_locate_batch_matches_locate_all(self, dup_index):
        values = np.asarray([-1, 5, 6, 9, 10, 12, 50])
        first, last = dup_index.locate_batch(values)
        for i, value in enumerate(values):
            assert (int(first[i]), int(last[i])) == dup_index.locate_all(int(value))

    def test_locate_batch_empty_index_raises(self):
        with pytest.raises(IndexError):
            PartitionIndex().locate_batch(np.asarray([1]))


class TestStructure:
    def test_rebuild_requires_monotone_fences(self):
        index = PartitionIndex()
        with pytest.raises(ValueError):
            index.rebuild([3, 2, 5])

    def test_depth_grows_with_partitions(self):
        index = PartitionIndex(fanout=4)
        index.rebuild(list(range(4)))
        shallow = index.depth
        index.rebuild(list(range(64)))
        assert index.depth > shallow

    def test_update_fence(self, index):
        index.update_fence(4, 99)
        assert index.locate(75) == 4

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            PartitionIndex(fanout=1)

    def test_len(self, index):
        assert len(index) == 5

    def test_locate_matches_linear_scan(self):
        rng = np.random.default_rng(3)
        fences = np.sort(rng.integers(0, 10_000, 50))
        index = PartitionIndex()
        index.rebuild(fences)
        for value in rng.integers(-10, 11_000, 200):
            expected = int(np.searchsorted(fences, value, side="left"))
            expected = min(expected, len(fences) - 1)
            assert index.locate(int(value)) == expected
