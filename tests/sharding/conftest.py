"""Shared fixtures for the sharding suite.

Worker processes are expensive to spawn (a fresh interpreter each,
``spawn`` context), so the end-to-end and property tests share one
long-lived :class:`~repro.sharding.cluster.ShardCluster` per session and
re-``attach`` fresh data instead of paying process startup per test or
per hypothesis example.  Crash tests that kill workers build their own
throwaway clusters.
"""

from __future__ import annotations

import pytest
from shard_helpers import N_SHARDS

from repro.sharding import ShardCluster


@pytest.fixture(scope="session")
def cluster3():
    """One running 3-shard worker pool, reused across tests via attach."""
    with ShardCluster(N_SHARDS, arena_bytes=1 << 20) as cluster:
        yield cluster
