"""Property tests: the sharded façade is oracle-equal to one process.

Every example loads the same rows into a single-process
:class:`~repro.api.database.Database` (the oracle) and into the shared
3-shard cluster, runs an identical random operation sequence through
both, and compares results and error counts.  Key domains are tiny on
purpose: heavy duplication forces :meth:`ShardMap.from_sorted_keys` to
snap fences, so duplicate runs straddling a tentative cut are the common
case, not the corner.

Two regimes bound what is contractual (see the README's sharding
section):

* **Variant A** -- payload is a pure function of the key and no key
  updates run: *everything* the session returns is compared exactly,
  including SUM aggregates and row payloads.
* **Variant B** -- key updates (including cross-shard moves) and
  arbitrary insert payloads are allowed; comparison drops to the
  count level (row counts, COUNT aggregates, delete/update flags,
  error tallies), which stays deterministic because every write removes
  or moves exactly one copy regardless of which.

Which copy of a duplicated key a delete or update removes is *pinned*
(the oldest surviving copy -- smallest row id, see
:meth:`repro.storage.column.PartitionedColumn._oldest_first`), so serial
and sharded agree on victims exactly even when duplicate copies carry
distinct payloads; ``TestDuplicateVictimRule`` is the regression for
that.  Row ids assigned *after* load remain non-contractual (inserts,
and rows carried by a cross-shard move, age differently per path), which
is why mixed random workloads still need Variant B's count-level regime.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from shard_helpers import normalize, payload_for, serial_db, sharded_db

from repro.workload.operations import (
    Aggregate,
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    PointQuery,
    RangeQuery,
    Update,
)

#: Tiny key domain: ~10 distinct values over up to 150 rows guarantees
#: duplicate runs long enough to straddle shard fences.
KEY = st.integers(0, 9)
loaded_keys = st.lists(KEY, min_size=0, max_size=150)

READ_SPECS = ("pq", "rq", "sum", "mpq", "mrc")
WRITE_SPECS = ("in", "mi", "de", "md")
UPDATE_SPECS = ("up", "mu")

spec = st.tuples(st.sampled_from(READ_SPECS + WRITE_SPECS), KEY, KEY)
spec_b = st.tuples(
    st.sampled_from(READ_SPECS + WRITE_SPECS + UPDATE_SPECS), KEY, KEY
)


def build_op(kind: str, a: int, b: int, *, pure_payload: bool):
    low, high = min(a, b), max(a, b)
    if kind == "pq":
        return PointQuery(key=a)
    if kind == "rq":
        return RangeQuery(low=low, high=high)
    if kind == "sum":
        return RangeQuery(low=low, high=high, aggregate=Aggregate.SUM)
    if kind == "mpq":
        return MultiPointQuery(keys=(a, b, a))
    if kind == "mrc":
        return MultiRangeCount(bounds=((low, high), (b, b), (0, 9)))
    if kind == "in":
        payload = (
            tuple(payload_for([a])[0].tolist())
            if pure_payload
            else (a * 100 + b, b)
        )
        return Insert(key=a, payload=payload)
    if kind == "mi":
        keys = (a, b)
        payloads = (
            tuple(tuple(row) for row in payload_for(keys).tolist())
            if pure_payload
            else ((a, b), (b, a))
        )
        return MultiInsert(keys=keys, payloads=payloads)
    if kind == "de":
        return Delete(key=a)
    if kind == "md":
        return MultiDelete(keys=(a, b))
    if kind == "up":
        return Update(old_key=a, new_key=b)
    if kind == "mu":
        return MultiUpdate(pairs=((a, b), (b, a), (a, 9 - a)))
    raise AssertionError(kind)


def counts_view(op, result):
    """The count-level projection that stays contractual under updates."""
    if isinstance(result, np.ndarray):
        if isinstance(op, MultiInsert):
            return result.shape  # rowids post-load are non-contractual
        return result.tolist()
    if isinstance(result, list):
        if result and isinstance(result[0], list):
            return [len(rows) for rows in result]
        return len(result)
    if isinstance(op, Insert):
        return result is not None
    return result


def run_both(cluster, keys, oplist):
    serial = serial_db(keys)
    with serial.session() as session:
        want = session.execute(list(oplist))
    with sharded_db(cluster, keys) as database:
        with database.session() as session:
            got = session.execute(list(oplist))
        total = database.num_rows
    assert total == serial.num_rows
    return want, got


common = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestVariantA:
    """No updates, ``payload = f(key)``: full exact equality."""

    @given(keys=loaded_keys, specs=st.lists(spec, min_size=1, max_size=25))
    @common
    def test_results_and_errors_match_exactly(self, cluster3, keys, specs):
        oplist = [
            build_op(kind, a, b, pure_payload=True) for kind, a, b in specs
        ]
        want, got = run_both(cluster3, keys, oplist)
        assert got.errors == want.errors
        for op, theirs, ours in zip(
            oplist, want.results, got.results, strict=True
        ):
            if isinstance(op, MultiInsert):
                assert np.asarray(ours).shape == np.asarray(theirs).shape
            elif isinstance(op, Insert):
                assert (ours is None) == (theirs is None)
            else:
                assert normalize(ours) == normalize(theirs), op


class TestVariantB:
    """Updates and arbitrary payloads: count-level equality."""

    @given(keys=loaded_keys, specs=st.lists(spec_b, min_size=1, max_size=25))
    @common
    def test_counts_and_errors_match(self, cluster3, keys, specs):
        oplist = [
            build_op(kind, a, b, pure_payload=False) for kind, a, b in specs
        ]
        want, got = run_both(cluster3, keys, oplist)
        assert got.errors == want.errors
        for op, theirs, ours in zip(
            oplist, want.results, got.results, strict=True
        ):
            assert counts_view(op, ours) == counts_view(op, theirs), op


class TestDuplicateVictimRule:
    """Deletes/updates of duplicated keys hit the pinned oldest copy.

    Every copy carries a *distinct* payload here, so any divergence in
    victim choice between the serial oracle and the sharded path (or any
    payload mangling across a cross-shard move) shows up as a
    payload-exact mismatch in the point queries.

    Scope note: a serial cross-chunk key update preserves the row's
    global row id ("the payload never moves"), while a cross-shard move
    re-inserts on the target shard under a fresh local row id.  The
    moved row's *age* therefore differs across paths -- the standing
    "row ids after load are non-contractual" caveat -- so the workload
    never deletes from a key after a cross-shard move lands on it.
    Victim choice on loaded duplicates (deletes, same-shard updates) and
    the carried payload itself are exact.
    """

    def test_serial_and_sharded_pick_the_same_victims(self, cluster3):
        keys = np.asarray([2] * 6 + [5] * 5 + [8] * 4, dtype=np.int64)
        # Column "a" is the load position: unique per copy, so victim
        # identity is fully observable through payloads.
        payload = np.stack(
            [np.arange(keys.size, dtype=np.int64), keys * 10], axis=1
        )
        oplist = [
            Delete(key=2),  # oldest copy (a=0) dies on both paths
            PointQuery(key=2),
            MultiDelete(keys=(5, 5, 8)),  # a=6, a=7 and a=11 die
            PointQuery(key=5),
            PointQuery(key=8),
            Update(old_key=8, new_key=9),  # same-shard: age preserved
            PointQuery(key=8),
            PointQuery(key=9),
            Delete(key=8),  # post-update victim: a=13, both paths
            PointQuery(key=8),
            Update(old_key=2, new_key=5),  # cross-shard: payload carried
            PointQuery(key=2),
            PointQuery(key=5),
        ]
        serial = serial_db(keys, payload=payload)
        with serial.session() as session:
            want = session.execute(list(oplist))
        with sharded_db(cluster3, keys, payload=payload) as database:
            shard_of = database.shard_map.shard_of
            assert shard_of(8) == shard_of(9)  # in-shard update
            assert shard_of(2) != shard_of(5)  # two-phase move
            with database.session() as session:
                got = session.execute(list(oplist))
            assert database.num_rows == serial.num_rows
        assert got.errors == want.errors
        for op, theirs, ours in zip(
            oplist, want.results, got.results, strict=True
        ):
            if isinstance(op, PointQuery):
                # Payload-exact: same victims died, same payloads moved.
                assert normalize(ours) == normalize(theirs), op
            else:
                assert counts_view(op, ours) == counts_view(op, theirs), op


def test_duplicate_run_straddling_a_fence_stays_whole(cluster3):
    """The even cut lands mid-run; every copy must still act as one key."""
    keys = np.asarray([3] * 40 + [7] * 5, dtype=np.int64)
    with sharded_db(cluster3, keys) as database:
        shards = database.shard_map.shard_of_batch(keys)
        for key in (3, 7):
            assert np.unique(shards[keys == key]).size == 1
        oplist = [
            PointQuery(key=3),
            Delete(key=3),
            RangeQuery(low=3, high=3),
            MultiDelete(keys=(3, 3, 7)),
            RangeQuery(low=0, high=10),
        ]
        serial = serial_db(keys)
        with serial.session() as session:
            want = session.execute(list(oplist))
        with database.session() as session:
            got = session.execute(list(oplist))
        for theirs, ours in zip(want.results, got.results, strict=True):
            assert normalize(ours) == normalize(theirs)
