"""Fuzzing the frame layer: garbage bytes fail fast, never hang or alloc.

The framing contract (shared by the replication cursor protocol and the
shard dispatch protocol) is that any malformed input -- oversized or zero
length prefixes, truncated payloads, non-UTF-8 bytes, invalid JSON,
non-object JSON -- raises :class:`FrameError` after reading a bounded
number of bytes.  The oversized case is the security-relevant one: the
length is validated *before* any payload byte is read, so a hostile
4-byte prefix cannot trigger a multi-gigabyte allocation.
"""

from __future__ import annotations

import random
import socket
import struct
import threading

import pytest

from repro.ipc.framing import (
    DEFAULT_MAX_FRAME,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.replication import transport
from repro.replication.errors import TransportError


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    try:
        yield left, right
    finally:
        left.close()
        right.close()


def push(sock, raw: bytes, *, close: bool = True) -> None:
    sock.sendall(raw)
    if close:
        sock.shutdown(socket.SHUT_WR)


class TestMalformedFrames:
    def test_round_trip_and_clean_eof(self, pair):
        left, right = pair
        send_frame(left, {"verb": "hello", "n": 3})
        left.shutdown(socket.SHUT_WR)
        assert recv_frame(right) == {"verb": "hello", "n": 3}
        assert recv_frame(right) is None

    def test_oversized_length_prefix_rejected_before_payload(self, pair):
        left, right = pair
        # A hostile prefix claiming 4 GiB: must fail after the 4 header
        # bytes, without waiting for (or allocating) the claimed payload.
        push(left, struct.pack("<I", 0xFFFFFFFF), close=False)
        with pytest.raises(FrameError, match="outside accepted bounds"):
            recv_frame(right)

    def test_length_just_over_the_bound_rejected(self, pair):
        left, right = pair
        push(left, struct.pack("<I", DEFAULT_MAX_FRAME + 1), close=False)
        with pytest.raises(FrameError, match="outside accepted bounds"):
            recv_frame(right)

    def test_zero_length_rejected(self, pair):
        left, right = pair
        push(left, struct.pack("<I", 0))
        with pytest.raises(FrameError, match="outside accepted bounds"):
            recv_frame(right)

    def test_truncated_header(self, pair):
        left, right = pair
        push(left, b"\x10\x00")
        with pytest.raises(FrameError, match="closed mid-frame"):
            recv_frame(right)

    def test_truncated_payload(self, pair):
        left, right = pair
        push(left, struct.pack("<I", 16) + b'{"verb"')
        with pytest.raises(FrameError, match="closed mid-frame"):
            recv_frame(right)

    def test_invalid_json_rejected(self, pair):
        left, right = pair
        body = b'{"verb": nope}'
        push(left, struct.pack("<I", len(body)) + body)
        with pytest.raises(FrameError, match="malformed frame"):
            recv_frame(right)

    def test_non_utf8_rejected(self, pair):
        left, right = pair
        body = b"\xff\xfe\xfd\xfc"
        push(left, struct.pack("<I", len(body)) + body)
        with pytest.raises(FrameError, match="malformed frame"):
            recv_frame(right)

    @pytest.mark.parametrize("payload", ["[1,2,3]", '"text"', "42", "null"])
    def test_non_object_json_rejected(self, pair, payload):
        left, right = pair
        body = payload.encode()
        push(left, struct.pack("<I", len(body)) + body)
        with pytest.raises(FrameError, match="not an object"):
            recv_frame(right)

    def test_send_refuses_oversized_frame(self, pair):
        left, _ = pair
        with pytest.raises(FrameError, match="refusing to send"):
            send_frame(left, {"blob": "x" * 64}, max_frame=32)

    def test_fuzz_random_garbage_never_hangs(self, pair):
        """Seeded garbage streams: FrameError or a frame, nothing else."""
        left, right = pair
        rng = random.Random(0xC0FFEE)
        raw = bytes(rng.randrange(256) for _ in range(1 << 14))
        writer = threading.Thread(target=push, args=(left, raw))
        writer.start()
        try:
            for _ in range(64):
                frame = recv_frame(right)
                if frame is None:
                    break
                assert isinstance(frame, dict)
        except FrameError:
            pass
        writer.join()


class TestTransportBound:
    """The replication cursor protocol caps frames far below the default."""

    def test_cursor_frames_are_bounded_at_64k(self, pair):
        left, right = pair
        length = transport._MAX_FRAME + 1
        assert length < DEFAULT_MAX_FRAME  # tighter than the shared bound
        push(left, struct.pack("<I", length), close=False)
        with pytest.raises(TransportError, match="outside accepted bounds"):
            transport.recv_frame(right)

    def test_cursor_send_refuses_oversized(self, pair):
        left, _ = pair
        blob = {"pad": "x" * (transport._MAX_FRAME + 1)}
        with pytest.raises(TransportError, match="refusing to send"):
            transport.send_frame(left, blob)

    def test_cursor_frames_round_trip(self, pair):
        left, right = pair
        transport.send_frame(left, {"verb": "exchange", "lsn": 12})
        assert transport.recv_frame(right) == {"verb": "exchange", "lsn": 12}
