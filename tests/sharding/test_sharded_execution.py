"""End-to-end sharded execution against live worker processes.

Deterministic scenarios covering every operation kind, the cross-shard
move paths, and the façade surface (``Database.sharded``, stats,
checkpoint/sync, session bookkeeping).  The shared 3-shard cluster is
re-attached per test; randomized oracle equality lives in
``test_sharded_oracle.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from shard_helpers import (
    N_SHARDS,
    normalize,
    payload_for,
    serial_db,
    sharded_db,
)

from repro.api.database import Database
from repro.sharding import ShardedDatabase, ShardError
from repro.workload.operations import (
    Aggregate,
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)


@pytest.fixture
def keys():
    rng = np.random.default_rng(42)
    return rng.integers(0, 300, size=900).astype(np.int64)


class TestOracleEquality:
    def test_every_read_kind_matches_serial(self, cluster3, keys):
        oplist = [
            PointQuery(key=150),
            PointQuery(key=10_000),  # miss
            PointQuery(key=5, columns=("b",)),
            RangeQuery(low=0, high=299),  # all shards
            RangeQuery(low=90, high=110, aggregate=Aggregate.SUM),
            RangeQuery(low=400, high=500),  # empty
            MultiPointQuery(keys=tuple(range(0, 300, 7))),
            MultiRangeCount(
                bounds=((0, 99), (100, 199), (250, 600), (42, 42))
            ),
        ]
        serial = serial_db(keys)
        with serial.session() as session:
            want = session.execute(list(oplist))
        with sharded_db(cluster3, keys) as database:
            with database.session() as session:
                got = session.execute(list(oplist))
        assert got.errors == want.errors == 0
        for index, (theirs, ours) in enumerate(
            zip(want.results, got.results, strict=True)
        ):
            assert normalize(theirs) == normalize(ours), oplist[index]

    def test_load_order_rowids_match_serial(self, cluster3, keys):
        """Load-time global row ids reproduce the serial table's."""
        op = PointQuery(key=int(keys[0]))
        serial = serial_db(keys)
        with serial.session() as session:
            want = session.execute([op]).results[0]
        with sharded_db(cluster3, keys) as database:
            with database.session() as session:
                got = session.execute([op]).results[0]
        assert sorted(r.rowid for r in got) == sorted(r.rowid for r in want)

    def test_writes_then_reads_match_serial(self, cluster3, keys):
        fresh = [1000, 1001, 1002]
        oplist = [
            MultiInsert(
                keys=tuple(fresh),
                payloads=tuple(map(tuple, payload_for(fresh).tolist())),
            ),
            Insert(key=77, payload=tuple(payload_for([77])[0].tolist())),
            Delete(key=50),
            MultiDelete(keys=(60, 61, 20_000)),
            RangeQuery(low=0, high=2000),
            MultiRangeCount(bounds=((999, 1003), (40, 80))),
        ]
        serial = serial_db(keys)
        with serial.session() as session:
            want = session.execute(list(oplist))
        with sharded_db(cluster3, keys) as database:
            with database.session() as session:
                got = session.execute(list(oplist))
            assert got.errors == want.errors
            # Reads after writes agree; insert rowids are a documented
            # divergence, so compare only shapes there.
            assert normalize(got.results[4]) == normalize(want.results[4])
            assert normalize(got.results[5]) == normalize(want.results[5])
            assert np.asarray(got.results[0]).shape == (3,)
            assert database.num_rows == serial.num_rows


class TestCrossShardMoves:
    def test_scalar_update_across_shards(self, cluster3):
        keys = np.arange(0, 300, dtype=np.int64)  # ~100 keys per shard
        with sharded_db(cluster3, keys) as database:
            source = database.shard_map.shard_of(10)
            target = database.shard_map.shard_of(290)
            assert source != target
            with database.session() as session:
                result = session.execute(
                    [
                        Update(old_key=10, new_key=290),
                        PointQuery(key=10),
                        PointQuery(key=290),
                    ]
                )
            assert result.errors == 0
            old, new = result.results[1], result.results[2]
            assert old == []
            assert len(new) == 2  # original 290 plus the moved row
            # The moved row keeps its payload through the take+insert.
            payloads = sorted(tuple(r.payload.values()) for r in new)
            assert tuple(payload_for([10])[0].tolist()) in payloads

    def test_scalar_update_miss_counts_one_error(self, cluster3):
        keys = np.arange(0, 300, dtype=np.int64)
        with sharded_db(cluster3, keys) as database:
            with database.session() as session:
                result = session.execute([Update(old_key=5555, new_key=1)])
            assert result.errors == 1
            assert result.results == [None]

    def test_multi_update_mixes_local_and_cross_shard(self, cluster3):
        keys = np.arange(0, 300, dtype=np.int64)
        pairs = (
            (10, 11),  # local to shard 0
            (20, 290),  # cross shard, forces a barrier
            (290, 30),  # cross back: must observe the previous move
            (7777, 1),  # miss: flag 0, not an error
            (150, 151),  # local to the middle shard
        )
        serial = serial_db(keys)
        with serial.session() as session:
            want = session.execute([MultiUpdate(pairs=pairs)])
        with sharded_db(cluster3, keys) as database:
            with database.session() as session:
                got = session.execute([MultiUpdate(pairs=pairs)])
        assert got.errors == want.errors == 0
        assert normalize(got.results[0]) == normalize(want.results[0])

    def test_post_move_state_matches_serial(self, cluster3):
        keys = np.arange(0, 300, dtype=np.int64)
        workload = Workload(
            operations=[
                MultiUpdate(pairs=((0, 299), (299, 0), (100, 200))),
                MultiRangeCount(bounds=tuple((k, k) for k in range(0, 300, 3))),
                RangeQuery(low=0, high=400),
            ],
            name="moves",
        )
        serial = serial_db(keys)
        with serial.session() as session:
            want = session.execute(workload)
        with sharded_db(cluster3, keys) as database:
            with database.session() as session:
                got = session.execute(workload)
        for theirs, ours in zip(want.results, got.results, strict=True):
            assert normalize(theirs) == normalize(ours)


class TestFacade:
    def test_database_sharded_entry_point(self, cluster3, keys):
        database = Database.sharded(
            keys,
            payload_for(keys),
            n_shards=N_SHARDS,
            cluster=cluster3,
            payload_names=["a", "b"],
        )
        with database:
            assert isinstance(database, ShardedDatabase)
            assert database.n_shards == N_SHARDS
            with database.session() as session:
                result = session.execute(RangeQuery(low=0, high=1000))
            assert result.results[0] == keys.size

    def test_session_result_contract(self, cluster3, keys):
        with sharded_db(cluster3, keys) as database:
            with database.session() as session:
                result = session.execute(
                    [RangeQuery(low=0, high=299), Insert(key=5)]
                )
                assert result.commit_lsn is None  # documented divergence
                assert result.durable
                assert result.operations == 2
                assert result.accesses.total_blocks > 0
                assert session.last_shard_accesses  # per-shard breakdown
                assert set(session.last_shard_accesses) <= set(
                    range(N_SHARDS)
                )
                session.close()
                assert session.closed
                with pytest.raises(ShardError):
                    session.execute([PointQuery(key=1)])

    def test_stats_cover_every_shard(self, cluster3, keys):
        with sharded_db(cluster3, keys) as database:
            stats = database.stats()
            assert sorted(stats) == list(range(N_SHARDS))
            assert sum(s["rows"] for s in stats.values()) == keys.size
            assert all(s["violations"] == 0 for s in stats.values())

    def test_closed_database_rejects_sessions(self, cluster3, keys):
        database = sharded_db(cluster3, keys)
        database.close()
        database.close()  # idempotent
        with pytest.raises(ShardError):
            database.session()
        # The shared cluster stays usable for the next attach.
        assert all(cluster3.alive(s) for s in range(N_SHARDS))

    def test_mismatched_cluster_size_rejected(self, cluster3, keys):
        with pytest.raises(ShardError):
            ShardedDatabase.from_rows(
                keys, payload_for(keys), n_shards=2, cluster=cluster3
            )

    def test_unknown_verb_is_an_error_reply_not_a_hang(self, cluster3, keys):
        with sharded_db(cluster3, keys):
            channel = cluster3.channel(0)
            with pytest.raises(ShardError, match="unknown verb"):
                channel.request({"verb": "no-such-verb"})
            # The stream stays framed: the next request works.
            assert channel.request({"verb": "stats"})["ok"]
