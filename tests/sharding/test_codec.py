"""Codec round-trips: operations and results survive the wire intact.

Both transports are exercised: descriptors through a real shared-memory
arena, and the inline-JSON fallback (no arena attached, or arrays that
overflow a deliberately tiny one) -- the fallback must change nothing but
speed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ipc.shm import ShmArena
from repro.sharding import ShardError
from repro.sharding.codec import (
    ArenaReader,
    ArenaWriter,
    decode_ops,
    decode_results,
    encode_ops,
    encode_results,
    materialize_rows,
)
from repro.storage.table import Row
from repro.workload.operations import (
    Aggregate,
    Delete,
    Insert,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    MultiUpdate,
    PointQuery,
    RangeQuery,
    Update,
)

ALL_OPS = [
    PointQuery(key=7),
    PointQuery(key=-3, columns=("a",)),
    RangeQuery(low=-5, high=40),
    RangeQuery(low=0, high=9, aggregate=Aggregate.SUM, columns=("b",)),
    Insert(key=11, payload=(1, 2)),
    Insert(key=12),
    Delete(key=13),
    Update(old_key=1, new_key=99),
    MultiPointQuery(keys=(3, 1, 4, 1, 5)),
    MultiRangeCount(bounds=((0, 10), (-7, 3), (5, 5))),
    MultiInsert(keys=(8, 6), payloads=((10, 20), (30, 40))),
    MultiInsert(keys=(2, 2, 2)),
    MultiDelete(keys=(9, 9)),
    MultiUpdate(pairs=((1, 2), (3, 4))),
]


def roundtrip_ops(arena):
    encoded = encode_ops(ALL_OPS, ArenaWriter(arena))
    return decode_ops(encoded, ArenaReader(arena))


def assert_ops_equal(decoded):
    assert len(decoded) == len(ALL_OPS)
    for original, copy in zip(decoded, ALL_OPS):
        assert original == copy, (original, copy)


class TestOperationRoundTrip:
    def test_through_arena(self):
        with ShmArena.create(1 << 16) as arena:
            assert_ops_equal(roundtrip_ops(arena))

    def test_inline_without_arena(self):
        assert_ops_equal(roundtrip_ops(None))

    def test_tiny_arena_overflows_to_inline(self):
        # 24 bytes: the first small array lands in the arena, the rest
        # fall back to inline lists -- decode cannot tell the difference.
        with ShmArena.create(24) as arena:
            encoded = encode_ops(ALL_OPS, ArenaWriter(arena))
            inline = [
                e
                for e in encoded
                for v in e.values()
                if isinstance(v, dict) and "v" in v
            ]
            assert inline, "expected at least one inline fallback"
            assert_ops_equal(decode_ops(encoded, ArenaReader(arena)))

    def test_unknown_operation_rejected(self):
        with pytest.raises(ShardError):
            encode_ops([object()], ArenaWriter(None))
        with pytest.raises(ShardError):
            decode_ops([{"k": "??"}], ArenaReader(None))

    def test_arena_descriptor_without_arena_rejected(self):
        with pytest.raises(ShardError):
            ArenaReader(None).get({"o": 0, "n": 4})

    def test_decoded_arrays_do_not_alias_the_arena(self):
        with ShmArena.create(1 << 12) as arena:
            writer = ArenaWriter(arena)
            descriptor = writer.put(np.asarray([1, 2, 3], dtype=np.int64))
            out = ArenaReader(arena).get(descriptor)
            arena.buf[:8] = b"\xff" * 8  # reply overwrites the arena
            assert out.tolist() == [1, 2, 3]


def rows(*specs):
    return [
        Row(key=key, rowid=rowid, payload={"a": a, "b": b})
        for key, rowid, a, b in specs
    ]


class TestResultRoundTrip:
    def test_scalar_and_array_results(self):
        oplist = [
            Delete(key=1),
            Update(old_key=1, new_key=2),
            RangeQuery(low=0, high=9),
            MultiRangeCount(bounds=((0, 1),)),
        ]
        results = [1, None, 17, np.asarray([4, 0, 9], dtype=np.int64)]
        encoded = encode_results(
            oplist, results, ArenaWriter(None), ("a", "b")
        )
        decoded = decode_results(encoded, ArenaReader(None))
        assert decoded[0] == 1
        assert decoded[1] is None
        assert decoded[2] == 17
        assert np.array_equal(decoded[3], results[3])

    @pytest.mark.parametrize("arena_bytes", [None, 1 << 14])
    def test_row_results_rebuild_with_base_offset(self, arena_bytes):
        arena = ShmArena.create(arena_bytes) if arena_bytes else None
        try:
            op = MultiPointQuery(keys=(5, 6, 5))
            result = [
                rows((5, 0, 36, 5), (5, 3, 36, 5)),
                [],
                rows((5, 0, 36, 5), (5, 3, 36, 5)),
            ]
            encoded = encode_results(
                [op], [result], ArenaWriter(arena), ("a", "b")
            )
            [block] = decode_results(encoded, ArenaReader(arena))
            assert block.nested
            rebuilt = materialize_rows(block, op.keys, ["a", "b"], base=100)
            assert [len(r) for r in rebuilt] == [2, 0, 2]
            assert [r.rowid for r in rebuilt[0]] == [100, 103]
            assert all(r.key == 5 for r in rebuilt[0])
            assert rebuilt[0][0].payload == {"a": 36, "b": 5}
        finally:
            if arena is not None:
                arena.close()

    def test_scalar_point_query_block_is_flat(self):
        op = PointQuery(key=8, columns=("a",))
        encoded = encode_results(
            [op], [rows((8, 2, 1, 0))], ArenaWriter(None), ("a", "b")
        )
        [block] = decode_results(encoded, ArenaReader(None))
        assert not block.nested
        [rebuilt] = materialize_rows(block, [8], ["a"], base=10)
        assert rebuilt[0].rowid == 12
        assert rebuilt[0].payload == {"a": 1}

    def test_unknown_result_rejected(self):
        with pytest.raises(ShardError):
            encode_results(
                [Delete(key=1)], [{"nope": 1}], ArenaWriter(None), ()
            )
        with pytest.raises(ShardError):
            decode_results([{"t": "??"}], ArenaReader(None))
