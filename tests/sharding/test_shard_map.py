"""Shard-map properties: fences route exactly and keep duplicates whole.

The serial-equivalence argument leans on two facts proved here: every
copy of a key lives in one shard (duplicate runs never straddle a
fence), and :meth:`ShardMap.split_range` decomposes any range into
per-shard pieces that tile it exactly -- so per-shard aggregates add up
to the serial answer with no key counted twice or missed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import ShardMap

I64 = np.iinfo(np.int64)

sorted_keys = st.lists(
    st.integers(-50, 50), min_size=0, max_size=120
).map(lambda xs: np.sort(np.asarray(xs, dtype=np.int64)))

shard_counts = st.integers(1, 6)


class TestConstruction:
    def test_last_bound_is_always_int64_max(self):
        m = ShardMap.from_sorted_keys(np.arange(10, dtype=np.int64), 3)
        assert int(m.bounds[-1]) == I64.max

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ShardMap(np.asarray([], dtype=np.int64))
        with pytest.raises(ValueError):
            ShardMap(np.asarray([5, 3, I64.max], dtype=np.int64))
        with pytest.raises(ValueError):
            ShardMap(np.asarray([1, 2, 3], dtype=np.int64))
        with pytest.raises(ValueError):
            ShardMap.from_sorted_keys(np.arange(4, dtype=np.int64), 0)

    def test_empty_input_routes_everything_to_shard_zero(self):
        m = ShardMap.from_sorted_keys(np.asarray([], dtype=np.int64), 4)
        for key in (I64.min, -1, 0, 1, I64.max):
            assert m.shard_of(key) == 0

    def test_duplicate_run_snaps_left_into_right_shard(self):
        # The even cut (position 10) lands inside the run of 5s; snapping
        # to the run's left edge (position 0) empties shard 0 rather than
        # splitting the run across two workers.
        keys = np.asarray([5] * 15 + [9] * 5, dtype=np.int64)
        m = ShardMap.from_sorted_keys(keys, 2)
        assert m.shard_of(5) == 1
        assert m.shard_of(9) == 1
        low, high = m.shard_interval(0)
        assert high < 5  # shard 0 owns no loaded key

    def test_meta_round_trip(self):
        m = ShardMap.from_sorted_keys(
            np.asarray([1, 1, 2, 7, 7, 7, 9], dtype=np.int64), 3
        )
        again = ShardMap.from_meta(m.to_meta())
        assert np.array_equal(m.bounds, again.bounds)


class TestRoutingProperties:
    @given(keys=sorted_keys, n_shards=shard_counts)
    @settings(max_examples=120, deadline=None)
    def test_split_positions_agree_with_shard_of(self, keys, n_shards):
        m = ShardMap.from_sorted_keys(keys, n_shards)
        positions = m.split_positions(keys)
        assert positions[0] == 0 and positions[-1] == keys.size
        assert np.all(np.diff(positions) >= 0)
        for shard in range(n_shards):
            owned = keys[int(positions[shard]):int(positions[shard + 1])]
            for key in owned.tolist():
                assert m.shard_of(key) == shard

    @given(keys=sorted_keys, n_shards=shard_counts)
    @settings(max_examples=120, deadline=None)
    def test_duplicates_never_straddle_a_fence(self, keys, n_shards):
        m = ShardMap.from_sorted_keys(keys, n_shards)
        shards = m.shard_of_batch(keys)
        for key in np.unique(keys).tolist():
            owners = np.unique(shards[keys == key])
            assert owners.size == 1

    @given(keys=sorted_keys, n_shards=shard_counts)
    @settings(max_examples=120, deadline=None)
    def test_shard_of_batch_matches_scalar(self, keys, n_shards):
        m = ShardMap.from_sorted_keys(keys, n_shards)
        probes = np.concatenate(
            [keys, np.asarray([I64.min, -1000, 1000, I64.max], dtype=np.int64)]
        )
        batch = m.shard_of_batch(probes)
        assert [m.shard_of(k) for k in probes.tolist()] == batch.tolist()

    @given(keys=sorted_keys, n_shards=shard_counts)
    @settings(max_examples=120, deadline=None)
    def test_intervals_partition_the_key_space(self, keys, n_shards):
        m = ShardMap.from_sorted_keys(keys, n_shards)
        cursor = I64.min
        for shard in range(n_shards):
            low, high = m.shard_interval(shard)
            if low > high:
                continue  # collapsed fence: shard owns nothing
            assert low == cursor
            cursor = high + 1 if high < I64.max else None
        assert cursor is None  # the last shard always reaches int64 max


class TestSplitRange:
    @given(
        keys=sorted_keys,
        n_shards=shard_counts,
        low=st.integers(-60, 60),
        span=st.integers(0, 80),
    )
    @settings(max_examples=150, deadline=None)
    def test_pieces_tile_the_range_exactly(self, keys, n_shards, low, span):
        m = ShardMap.from_sorted_keys(keys, n_shards)
        high = low + span
        pieces = m.split_range(low, high)
        assert pieces, "a non-empty range always has at least one piece"
        assert pieces[0][1] == low and pieces[-1][2] == high
        for (s1, _, h1), (s2, l2, _) in zip(pieces, pieces[1:]):
            assert s1 < s2
            assert l2 == h1 + 1
        for shard, sub_low, sub_high in pieces:
            owner_low, owner_high = m.shard_interval(shard)
            assert owner_low <= sub_low <= sub_high <= owner_high

    @given(
        keys=sorted_keys,
        n_shards=shard_counts,
        low=st.integers(-60, 60),
        span=st.integers(0, 80),
    )
    @settings(max_examples=150, deadline=None)
    def test_per_piece_counts_sum_to_the_serial_count(
        self, keys, n_shards, low, span
    ):
        m = ShardMap.from_sorted_keys(keys, n_shards)
        high = low + span
        serial = int(((keys >= low) & (keys <= high)).sum())
        split = sum(
            int(((keys >= lo) & (keys <= hi)).sum())
            for _, lo, hi in m.split_range(low, high)
        )
        assert split == serial
