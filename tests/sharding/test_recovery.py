"""Worker crashes mid-batch and mid-move: detection, WAL recovery, re-open.

These tests spawn their own throwaway clusters (workers die on purpose;
the shared session cluster must stay healthy).  The fault hooks live in
the worker loop: ``exit_before_apply`` kills the process before the
batch executes, ``exit_before_ack`` after the batch committed through
the shard's WAL (fsync'd) but before the dispatcher hears back -- the
classic lost-ack window that recovery must replay.  The move hooks
(:data:`repro.durability.faults.MOVE_POINTS`) kill a worker at each edge
of the two-phase cross-shard move window; the re-open resolution scan
must land every such kill on a fully-applied or fully-absent move.
"""

from __future__ import annotations

import numpy as np
import pytest
from shard_helpers import payload_for

from repro.durability.faults import MOVE_POINTS
from repro.sharding import ShardedDatabase, WorkerDiedError
from repro.sharding.shard_map import ShardMap
from repro.workload.operations import MultiInsert, PointQuery, RangeQuery, Update

BASE_KEYS = np.repeat(np.arange(0, 40, dtype=np.int64), 5)  # 200 rows


def durable_db(root, *, faults=None) -> ShardedDatabase:
    return ShardedDatabase.from_rows(
        BASE_KEYS,
        payload_for(BASE_KEYS),
        n_shards=2,
        payload_names=["a", "b"],
        partitions=8,
        block_values=256,
        durability=root,
        fsync="always",
        faults=faults,
    )


def count_all(database) -> int:
    with database.session() as session:
        return int(session.execute(RangeQuery(low=-(2**62), high=2**62)).results[0])


def both_shard_insert(database, start: int) -> MultiInsert:
    """Keys landing on both shards, so the batch fans out."""
    low_key = 0
    high_key = 39
    keys = (low_key, high_key, start, start + 1)
    assert database.shard_map.shard_of(low_key) != database.shard_map.shard_of(
        high_key
    )
    return MultiInsert(
        keys=keys, payloads=tuple(map(tuple, payload_for(keys).tolist()))
    )


class TestLostAck:
    def test_batch_committed_but_unacked_survives_reopen(self, tmp_path):
        root = tmp_path / "db"
        database = durable_db(root, faults={1: {"exit_before_ack": 2}})
        try:
            with database.session() as session:
                session.execute([both_shard_insert(database, 100)])
                with pytest.raises(WorkerDiedError) as info:
                    session.execute([both_shard_insert(database, 200)])
            assert info.value.shard == 1
        finally:
            database.close()
        # The dying shard fsync'd batch 2 before the injected crash, so
        # recovery replays it from the per-shard WAL: nothing is lost.
        recovered = ShardedDatabase.open(root)
        try:
            assert count_all(recovered) == BASE_KEYS.size + 8
        finally:
            recovered.close()

    def test_batch_killed_before_apply_is_absent_after_reopen(self, tmp_path):
        root = tmp_path / "db"
        database = durable_db(root, faults={1: {"exit_before_apply": 2}})
        try:
            with database.session() as session:
                session.execute([both_shard_insert(database, 100)])
                with pytest.raises(WorkerDiedError):
                    session.execute([both_shard_insert(database, 200)])
        finally:
            database.close()
        # Shard 1 died before executing batch 2; shard 0 committed its
        # half.  Per-shard WALs have no cross-shard transaction, so the
        # batch is torn: base rows + batch 1 (4) + shard 0's half of
        # batch 2 (2 of its 4 keys).
        recovered = ShardedDatabase.open(root)
        try:
            shards = recovered.shard_map.shard_of_batch(
                np.asarray([0, 39, 200, 201], dtype=np.int64)
            )
            survivors = int((shards == 0).sum())
            assert count_all(recovered) == BASE_KEYS.size + 4 + survivors
        finally:
            recovered.close()


def move_shards(old_key: int, new_key: int) -> tuple[int, int]:
    """Source/target shards of a BASE_KEYS move without spawning workers."""
    shard_map = ShardMap.from_sorted_keys(np.sort(BASE_KEYS), 2)
    return shard_map.shard_of(old_key), shard_map.shard_of(new_key)


def point_rows(database, key: int):
    with database.session() as session:
        return session.execute(PointQuery(key=int(key))).results[0]


#: Whether the move must be *applied* after recovery from a kill at each
#: window edge.  Only a kill before the source logs anything leaves the
#: move absent; once the ``[move_intent, delete]`` record is durable, the
#: resolution scan re-drives (or confirms) the insert half.
MOVE_OUTCOME = {
    "move.take.before_apply": False,
    "move.take.before_ack": True,
    "move.put.before_apply": True,
    "move.put.before_ack": True,
    "move.forget.before_apply": True,
}


class TestMidMoveKill:
    """Kill matrix over the cross-shard move window (the tentpole bug)."""

    OLD_KEY, NEW_KEY = 0, 39

    @pytest.mark.parametrize("point", MOVE_POINTS)
    def test_kill_at_every_window_edge_recovers_whole_or_absent(
        self, tmp_path, point
    ):
        root = tmp_path / "db"
        source, target = move_shards(self.OLD_KEY, self.NEW_KEY)
        assert source != target
        faulted = target if ".put." in point else source
        database = durable_db(root, faults={faulted: {point: 1}})
        try:
            with database.session() as session:
                with pytest.raises(WorkerDiedError) as info:
                    session.execute(
                        Update(old_key=self.OLD_KEY, new_key=self.NEW_KEY)
                    )
            assert info.value.shard == faulted
        finally:
            database.close()

        recovered = ShardedDatabase.open(root)
        try:
            # Never a lost (or duplicated) row, whatever the kill edge.
            assert count_all(recovered) == BASE_KEYS.size
            old_rows = point_rows(recovered, self.OLD_KEY)
            new_rows = point_rows(recovered, self.NEW_KEY)
            moved_payload = dict(
                zip(("a", "b"), payload_for([self.OLD_KEY])[0].tolist())
            )
            carried = [
                row for row in new_rows if dict(row.payload) == moved_payload
            ]
            if MOVE_OUTCOME[point]:
                # Oracle state after the update: one copy of OLD_KEY now
                # lives at NEW_KEY, payload carried along unchanged.
                assert len(old_rows) == 4
                assert len(new_rows) == 6
                assert len(carried) == 1
            else:
                assert len(old_rows) == 5
                assert len(new_rows) == 5
                assert not carried
        finally:
            recovered.close()

    def test_lost_row_regression_take_applied_put_never_ran(self, tmp_path):
        """The documented crash-loss bug, pinned: killed between the
        take-apply and the insert-apply, the row used to vanish.  The
        durable intent now carries it through recovery."""
        root = tmp_path / "db"
        source, _ = move_shards(self.OLD_KEY, self.NEW_KEY)
        database = durable_db(
            root, faults={source: {"move.take.before_ack": 1}}
        )
        try:
            with database.session() as session:
                with pytest.raises(WorkerDiedError):
                    session.execute(
                        Update(old_key=self.OLD_KEY, new_key=self.NEW_KEY)
                    )
        finally:
            database.close()

        recovered = ShardedDatabase.open(root)
        try:
            assert count_all(recovered) == BASE_KEYS.size
            # The taken row reappears on the target shard under NEW_KEY
            # with its original payload -- the move completed.
            rows = point_rows(recovered, self.NEW_KEY)
            moved_payload = dict(
                zip(("a", "b"), payload_for([self.OLD_KEY])[0].tolist())
            )
            assert [
                row for row in rows if dict(row.payload) == moved_payload
            ], "taken row was lost across the crash"
            # Recovery is idempotent: a second clean re-open (no intents
            # left unresolved) observes the same state.
        finally:
            recovered.close()
        reopened = ShardedDatabase.open(root)
        try:
            assert count_all(reopened) == BASE_KEYS.size
            assert len(point_rows(reopened, self.NEW_KEY)) == 6
        finally:
            reopened.close()

    def test_moves_resume_after_recovery(self, tmp_path):
        """Post-recovery moves must allocate fresh move ids (seeded past
        the WAL's maximum) and run the full protocol cleanly."""
        root = tmp_path / "db"
        database = durable_db(root)
        try:
            with database.session() as session:
                result = session.execute(
                    Update(old_key=self.OLD_KEY, new_key=self.NEW_KEY)
                )
            assert result.errors == 0
        finally:
            database.close()
        recovered = ShardedDatabase.open(root)
        try:
            with recovered.session() as session:
                result = session.execute(
                    Update(old_key=self.OLD_KEY, new_key=self.NEW_KEY)
                )
            assert result.errors == 0
            assert count_all(recovered) == BASE_KEYS.size
            assert len(point_rows(recovered, self.OLD_KEY)) == 3
            assert len(point_rows(recovered, self.NEW_KEY)) == 7
        finally:
            recovered.close()


class TestShardLsns:
    def test_execute_reports_per_shard_watermarks(self, tmp_path):
        database = durable_db(tmp_path / "db")
        try:
            with database.session() as session:
                result = session.execute([both_shard_insert(database, 100)])
                assert result.commit_lsn is None
                assert result.durable
                # Both shards committed one batch: watermark vector has
                # both entries at LSN 1 (load takes a snapshot, not WAL).
                assert result.shard_lsns == {0: 1, 1: 1}
                # A cross-shard move bumps both sides' watermarks.
                result = session.execute(Update(old_key=0, new_key=39))
                assert result.shard_lsns == {0: 3, 1: 2}
            # A read reports the covering watermark of the shards it
            # touched, matching the serial session's watermark semantics
            # (keys 0..10 route to shard 0 only).
            with database.session() as session:
                result = session.execute(RangeQuery(low=0, high=10))
                assert result.shard_lsns == {0: 3}
        finally:
            database.close()


class TestKill:
    def test_killed_worker_raises_and_peers_stay_alive(self, tmp_path):
        database = durable_db(tmp_path / "db")
        try:
            database.kill(0)
            assert not database.cluster.alive(0)
            assert database.cluster.alive(1)
            with database.session() as session:
                with pytest.raises(WorkerDiedError) as info:
                    session.execute([both_shard_insert(database, 100)])
            assert info.value.shard == 0
        finally:
            database.close()

    def test_reopen_after_kill_recovers_the_load(self, tmp_path):
        root = tmp_path / "db"
        database = durable_db(root)
        try:
            with database.session() as session:
                session.execute([both_shard_insert(database, 100)])
            database.sync()
            database.kill(1)
        finally:
            database.close()
        recovered = ShardedDatabase.open(root)
        try:
            assert count_all(recovered) == BASE_KEYS.size + 4
            # Recovery renumbers rows per shard; the logical multiset is
            # what must survive, and new writes keep working.
            with recovered.session() as session:
                result = session.execute([both_shard_insert(recovered, 300)])
            assert result.errors == 0
            assert count_all(recovered) == BASE_KEYS.size + 8
        finally:
            recovered.close()
