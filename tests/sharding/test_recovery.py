"""Worker crashes mid-batch: detection, per-shard WAL recovery, re-open.

These tests spawn their own throwaway clusters (workers die on purpose;
the shared session cluster must stay healthy).  The fault hooks live in
the worker loop: ``exit_before_apply`` kills the process before the
batch executes, ``exit_before_ack`` after the batch committed through
the shard's WAL (fsync'd) but before the dispatcher hears back -- the
classic lost-ack window that recovery must replay.
"""

from __future__ import annotations

import numpy as np
import pytest
from shard_helpers import payload_for

from repro.sharding import ShardedDatabase, WorkerDiedError
from repro.workload.operations import MultiInsert, RangeQuery

BASE_KEYS = np.repeat(np.arange(0, 40, dtype=np.int64), 5)  # 200 rows


def durable_db(root, *, faults=None) -> ShardedDatabase:
    return ShardedDatabase.from_rows(
        BASE_KEYS,
        payload_for(BASE_KEYS),
        n_shards=2,
        payload_names=["a", "b"],
        partitions=8,
        block_values=256,
        durability=root,
        fsync="always",
        faults=faults,
    )


def count_all(database) -> int:
    with database.session() as session:
        return int(session.execute(RangeQuery(low=-(2**62), high=2**62)).results[0])


def both_shard_insert(database, start: int) -> MultiInsert:
    """Keys landing on both shards, so the batch fans out."""
    low_key = 0
    high_key = 39
    keys = (low_key, high_key, start, start + 1)
    assert database.shard_map.shard_of(low_key) != database.shard_map.shard_of(
        high_key
    )
    return MultiInsert(
        keys=keys, payloads=tuple(map(tuple, payload_for(keys).tolist()))
    )


class TestLostAck:
    def test_batch_committed_but_unacked_survives_reopen(self, tmp_path):
        root = tmp_path / "db"
        database = durable_db(root, faults={1: {"exit_before_ack": 2}})
        try:
            with database.session() as session:
                session.execute([both_shard_insert(database, 100)])
                with pytest.raises(WorkerDiedError) as info:
                    session.execute([both_shard_insert(database, 200)])
            assert info.value.shard == 1
        finally:
            database.close()
        # The dying shard fsync'd batch 2 before the injected crash, so
        # recovery replays it from the per-shard WAL: nothing is lost.
        recovered = ShardedDatabase.open(root)
        try:
            assert count_all(recovered) == BASE_KEYS.size + 8
        finally:
            recovered.close()

    def test_batch_killed_before_apply_is_absent_after_reopen(self, tmp_path):
        root = tmp_path / "db"
        database = durable_db(root, faults={1: {"exit_before_apply": 2}})
        try:
            with database.session() as session:
                session.execute([both_shard_insert(database, 100)])
                with pytest.raises(WorkerDiedError):
                    session.execute([both_shard_insert(database, 200)])
        finally:
            database.close()
        # Shard 1 died before executing batch 2; shard 0 committed its
        # half.  Per-shard WALs have no cross-shard transaction, so the
        # batch is torn: base rows + batch 1 (4) + shard 0's half of
        # batch 2 (2 of its 4 keys).
        recovered = ShardedDatabase.open(root)
        try:
            shards = recovered.shard_map.shard_of_batch(
                np.asarray([0, 39, 200, 201], dtype=np.int64)
            )
            survivors = int((shards == 0).sum())
            assert count_all(recovered) == BASE_KEYS.size + 4 + survivors
        finally:
            recovered.close()


class TestKill:
    def test_killed_worker_raises_and_peers_stay_alive(self, tmp_path):
        database = durable_db(tmp_path / "db")
        try:
            database.kill(0)
            assert not database.cluster.alive(0)
            assert database.cluster.alive(1)
            with database.session() as session:
                with pytest.raises(WorkerDiedError) as info:
                    session.execute([both_shard_insert(database, 100)])
            assert info.value.shard == 0
        finally:
            database.close()

    def test_reopen_after_kill_recovers_the_load(self, tmp_path):
        root = tmp_path / "db"
        database = durable_db(root)
        try:
            with database.session() as session:
                session.execute([both_shard_insert(database, 100)])
            database.sync()
            database.kill(1)
        finally:
            database.close()
        recovered = ShardedDatabase.open(root)
        try:
            assert count_all(recovered) == BASE_KEYS.size + 4
            # Recovery renumbers rows per shard; the logical multiset is
            # what must survive, and new writes keep working.
            with recovered.session() as session:
                result = session.execute([both_shard_insert(recovered, 300)])
            assert result.errors == 0
            assert count_all(recovered) == BASE_KEYS.size + 8
        finally:
            recovered.close()
