"""Helpers shared by the sharding tests (imported as a plain module).

Kept out of ``conftest.py`` so test modules can import them by name
without relying on conftest import mechanics.
"""

from __future__ import annotations

import numpy as np

from repro.api.database import Database
from repro.sharding import ShardedDatabase
from repro.storage.layouts import LayoutKind

#: Shard count the shared session cluster runs with; 3 exercises middle
#: shards (both fences real) without tripling spawn cost.
N_SHARDS = 3


def payload_for(keys) -> np.ndarray:
    """Payload as a pure function of the key.

    With ``payload = f(key)`` every copy of a duplicated key carries the
    same payload, so delete-victim choice is invisible to results -- the
    regime the broad oracle-equality contract is stated under (see the
    sharding README section).  The choice itself is nevertheless pinned
    (oldest surviving copy, smallest row id) on both the serial and
    sharded paths; ``test_sharded_oracle.TestDuplicateVictimRule`` pins
    exact equality with *distinct* per-copy payloads.
    """
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys * 7 + 1, keys % 13], axis=1)


def sharded_db(cluster, keys, **options) -> ShardedDatabase:
    """A sharded database attached to ``cluster`` with test defaults."""
    keys = np.asarray(keys, dtype=np.int64)
    options.setdefault("payload", payload_for(keys))
    options.setdefault("payload_names", ["a", "b"])
    options.setdefault("partitions", 8)
    options.setdefault("block_values", 256)
    return ShardedDatabase.from_rows(
        keys, n_shards=cluster.n_shards, cluster=cluster, **options
    )


def serial_db(keys, **options) -> Database:
    """The single-process oracle loaded from the same rows."""
    keys = np.asarray(keys, dtype=np.int64)
    options.setdefault("payload", payload_for(keys))
    options.setdefault("payload_names", ["a", "b"])
    options.setdefault("partitions", 8)
    options.setdefault("block_values", 256)
    payload = options.pop("payload")
    return Database.from_rows(
        keys, payload, layout=LayoutKind("equi"), **options
    )


def normalize(result):
    """Order-independent view of one result for serial comparison."""
    if isinstance(result, np.ndarray):
        return result.tolist()
    if isinstance(result, list):
        if result and isinstance(result[0], list):
            return [normalize(rows) for rows in result]
        return sorted(
            (row.key, tuple(sorted(row.payload.items()))) for row in result
        )
    return result
