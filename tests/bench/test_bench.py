"""Tests for the benchmark harness, reporting and experiment drivers (smoke)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    LAYOUT_ORDER,
    build_hap_engine,
    compare_layouts,
    normalized_throughput,
    run_workload,
)
from repro.bench.microbench import fit_cost_constants
from repro.bench.reporting import banner, format_series, format_table
from repro.storage.layouts import LayoutKind
from repro.workload.hap import HAPConfig, make_workload


@pytest.fixture(scope="module")
def tiny_config():
    return HAPConfig(num_rows=4_096, chunk_size=4_096, block_values=64)


class TestHarness:
    def test_run_workload_aggregates(self, tiny_config):
        engine = build_hap_engine(LayoutKind.EQUI, tiny_config, partitions=8)
        workload = make_workload("hybrid_skewed", tiny_config, num_operations=200)
        result = run_workload(engine, workload, layout_name="equi")
        assert result.operations + result.errors == 200
        assert result.simulated_seconds > 0
        assert result.throughput_ops > 0
        assert "insert" in result.mean_latency_ns
        assert result.counts["insert"] > 0

    def test_run_workload_batched_matches_sequential_accesses(self, tiny_config):
        workload = make_workload("hybrid_skewed", tiny_config, num_operations=200)
        sequential_engine = build_hap_engine(
            LayoutKind.EQUI, tiny_config, partitions=8
        )
        batch_engine = build_hap_engine(LayoutKind.EQUI, tiny_config, partitions=8)
        sequential = run_workload(sequential_engine, workload, layout_name="equi")
        batched = run_workload(
            batch_engine, workload, layout_name="equi", batch_size=64
        )
        assert batched.operations == sequential.operations
        assert batched.errors == sequential.errors
        # Grouped reads charge identically; grouped writes coalesce ripple
        # charges, so every access tally is bounded by the sequential one
        # and the index-probe count (never coalesced) matches exactly.
        # (The <= bound is order-safe here because hybrid_skewed has no
        # deletes and inserts only fresh unique keys -- see
        # StorageEngine.execute_batch's duplicate-key caveat.)
        batch_counts = batch_engine.counter.snapshot()
        sequential_counts = sequential_engine.counter.snapshot()
        assert batch_counts.index_probes == sequential_counts.index_probes
        for field in ("random_reads", "random_writes", "seq_reads", "seq_writes"):
            assert getattr(batch_counts, field) <= getattr(sequential_counts, field)
        assert batched.counts["batch"] == 200 // 64 + 1

    def test_run_workload_rejects_bad_batch_size(self, tiny_config):
        engine = build_hap_engine(LayoutKind.EQUI, tiny_config, partitions=8)
        workload = make_workload("hybrid_skewed", tiny_config, num_operations=10)
        with pytest.raises(ValueError):
            run_workload(engine, workload, batch_size=0)

    def test_build_casper_engine_requires_training(self, tiny_config):
        with pytest.raises(ValueError):
            build_hap_engine(LayoutKind.CASPER, tiny_config)

    def test_build_every_layout(self, tiny_config):
        training = make_workload("hybrid_skewed", tiny_config, num_operations=100)
        for layout in LAYOUT_ORDER:
            engine = build_hap_engine(
                layout, tiny_config, training_workload=training, partitions=8
            )
            assert engine.table.num_rows == tiny_config.num_rows

    def test_compare_layouts_and_normalization(self, tiny_config):
        results = compare_layouts(
            tiny_config,
            "hybrid_skewed",
            layouts=(LayoutKind.CASPER, LayoutKind.STATE_OF_ART, LayoutKind.SORTED),
            num_operations=150,
            partitions=8,
        )
        normalized = normalized_throughput(results)
        assert normalized[LayoutKind.STATE_OF_ART] == pytest.approx(1.0)
        assert all(value > 0 for value in normalized.values())

    def test_casper_beats_sorted_on_hybrid(self, tiny_config):
        results = compare_layouts(
            tiny_config,
            "hybrid_skewed",
            layouts=(LayoutKind.CASPER, LayoutKind.SORTED),
            num_operations=300,
            partitions=8,
        )
        assert (
            results[LayoutKind.CASPER].throughput_ops
            > results[LayoutKind.SORTED].throughput_ops
        )


class TestMicrobench:
    def test_fit_cost_constants_small(self):
        result = fit_cost_constants(array_bytes=1 * 1024 * 1024, accesses=5_000)
        constants = result.to_constants()
        assert constants.random_read > 0
        assert constants.seq_read > 0


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(("a", "bbb"), [(1, 2.5), ("x", 1e9)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        text = format_series("curve", [1, 2], [0.5, 0.25])
        assert "curve" in text

    def test_banner(self):
        assert "title" in banner("title")


class TestExperimentSmoke:
    """Tiny-scale smoke runs of each experiment driver."""

    def test_fig1(self):
        from repro.bench.experiments import fig1

        results = fig1.run(
            fig1.Figure1Config(num_rows=8_192, block_values=128, num_operations=150)
        )
        assert len(results) == 3
        assert fig1.report(results)

    def test_fig2(self):
        from repro.bench.experiments import fig2

        results = fig2.run(
            fig2.Figure2Config(
                num_blocks=32,
                block_values=128,
                partition_counts=(1, 4, 16, 32),
                ghost_fractions=(0.0, 0.01),
                operations=100,
            )
        )
        structure = results["structure"]
        assert structure[0][1] >= structure[-1][1]  # read cost falls
        assert structure[0][2] <= structure[-1][2]  # write cost rises
        assert fig2.report(results)

    def test_fig9(self):
        from repro.bench.experiments import fig9

        results = fig9.run(
            fig9.Figure9Config(
                chunk_values=16_384, block_values=128, insert_partitions=16,
                pq_partitions=6, repetitions=2,
            )
        )
        for rows in results.values():
            for _partition, measured, model, ratio in rows:
                assert measured > 0 and model > 0
                assert 0.2 < ratio < 5.0
        assert fig9.report(results)

    def test_fig11(self):
        from repro.bench.experiments import fig11

        results = fig11.run(
            fig11.Figure11Config(
                data_sizes=(10_000, 1_000_000),
                chunk_counts=(1, 100),
                calibration_blocks=64,
                measured_max_blocks=256,
            )
        )
        assert len(results["rows"]) == 2
        assert fig11.report(results)

    def test_fig16(self):
        from repro.bench.experiments import fig16

        results = fig16.run(
            fig16.Figure16Config(
                num_blocks=64,
                operations=2_000,
                mass_shifts=(0.0, 0.15),
                rotational_shifts=(0.0, 0.25, 0.5),
            )
        )
        matrix = results["matrix"]
        assert matrix[0.0][0] == pytest.approx(1.0)
        # A large rotational shift should hurt the trained layout.
        assert matrix[0.0][-1] >= matrix[0.0][0]
        assert fig16.report(results)

    def test_compression(self):
        from repro.bench.experiments import compression

        results = compression.run(
            compression.CompressionConfig(num_values=16_384, partition_counts=(1, 64))
        )
        ratios = {name: dict_ratio for name, dict_ratio, _for, _rle in results["ratios"]}
        assert all(value > 1.0 for value in ratios.values())
        partitioned = dict(results["partitioned_for"])
        assert partitioned[64] >= partitioned[1]
        assert compression.report(results)
