"""Execution-policy equivalence: Serial vs. Vectorized vs. Adaptive.

The policy contract (see :mod:`repro.api.policies`) is property-tested on
randomized mixed workloads over a multi-chunk table whose key column holds a
duplicate run straddling a chunk boundary:

* results are identical across all three policies, in submission order;
* simulated access counts are identical for read/update workloads and never
  larger than serial dispatch for insert/delete runs (coalesced sweeps);
* the final table state is identical and structurally valid.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.policies import (
    AdaptivePolicy,
    ExecutionPolicy,
    SerialPolicy,
    VectorizedPolicy,
    longest_groupable_run,
)
from repro.storage.engine import StorageEngine
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder
from repro.workload.operations import (
    Aggregate,
    Delete,
    Insert,
    PointQuery,
    RangeQuery,
    Update,
)

#: The duplicated key whose run straddles the first chunk boundary.
STRADDLE_KEY = 500

#: Number of copies of :data:`STRADDLE_KEY` loaded into the table.
STRADDLE_COPIES = 13

CHUNK_SIZE = 256


def base_keys() -> np.ndarray:
    """512 keys: unique evens plus a duplicate run straddling chunk 0/1.

    The first 250 positions hold ``0, 2, ..., 498``; positions 250..262 all
    hold :data:`STRADDLE_KEY`; the rest continue ``502, 504, ...``.  With
    ``chunk_size=256`` the duplicate run crosses the chunk boundary, which
    is exactly the case the batched probes must keep exact.
    """
    return np.concatenate(
        (
            np.arange(0, STRADDLE_KEY, 2, dtype=np.int64),
            np.full(STRADDLE_COPIES, STRADDLE_KEY, dtype=np.int64),
            np.arange(STRADDLE_KEY + 2, 998, 2, dtype=np.int64),
        )
    )


def build_engine() -> StorageEngine:
    keys = base_keys()
    payload = np.arange(keys.shape[0] * 2, dtype=np.int64).reshape(-1, 2)
    spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=8, block_values=32)
    table = Table(
        keys,
        payload,
        chunk_size=CHUNK_SIZE,
        chunk_builder=layout_chunk_builder(spec),
        block_values=32,
    )
    assert table.num_chunks == 2
    return StorageEngine(table)


def read_workload(rng: np.random.Generator, size: int) -> list:
    """Point/range reads, including straddling duplicates and misses."""
    operations = []
    for _ in range(size):
        kind = rng.integers(0, 4)
        if kind == 0:
            # Mix hits, the straddling duplicate, and odd-key misses.
            key = int(
                rng.choice(
                    [int(rng.integers(0, 1_000)), STRADDLE_KEY, 501, 999]
                )
            )
            operations.append(PointQuery(key=key))
        elif kind == 1:
            key = int(rng.integers(0, 1_000))
            operations.append(PointQuery(key=key, columns=("a1",)))
        elif kind == 2:
            low = int(rng.integers(0, 900))
            operations.append(
                RangeQuery(low=low, high=low + int(rng.integers(0, 200)))
            )
        else:
            low = int(rng.integers(0, 900))
            operations.append(
                RangeQuery(
                    low=low,
                    high=low + int(rng.integers(0, 200)),
                    aggregate=Aggregate.SUM,
                )
            )
    return operations


def mixed_workload(rng: np.random.Generator, size: int) -> list:
    """Reads plus writes, keeping the write targets unambiguous.

    Deletes and update sources draw (without replacement) from disjoint
    pools of keys that are *unique* in the table, and inserted/update-target
    keys are fresh odd values -- the regime in which the bulk write paths
    are exactly result-equivalent to serial dispatch (see the duplicate-key
    caveat on ``StorageEngine.execute_batch``).  Reads still cover the
    straddling duplicate run.
    """
    evens = rng.permutation(np.arange(0, STRADDLE_KEY, 2))
    delete_pool = [int(k) for k in evens[:40]]
    update_pool = [int(k) for k in evens[40:80]]
    fresh = iter(
        (2 * rng.permutation(np.arange(2_000, 4_000)) + 1).tolist()
    )
    operations = []
    for _ in range(size):
        kind = rng.integers(0, 5)
        if kind == 0:
            operations.extend(read_workload(rng, 1))
        elif kind == 1:
            operations.append(Insert(key=int(next(fresh))))
        elif kind == 2 and delete_pool:
            operations.append(Delete(key=delete_pool.pop()))
        elif kind == 3 and update_pool:
            operations.append(
                Update(old_key=update_pool.pop(), new_key=int(next(fresh)))
            )
        else:
            key = int(rng.choice([STRADDLE_KEY, int(rng.integers(0, 1_000))]))
            operations.append(PointQuery(key=key))
    return operations


def policies(rng: np.random.Generator) -> list[ExecutionPolicy]:
    return [
        SerialPolicy(),
        VectorizedPolicy(batch_size=int(rng.integers(1, 96))),
        AdaptivePolicy(
            initial_batch_size=int(rng.integers(4, 64)),
            min_batch_size=4,
            max_batch_size=256,
        ),
    ]


def run_policy(policy: ExecutionPolicy, operations: list):
    engine = build_engine()
    outcome = policy.execute(engine, operations)
    return engine, outcome


def normalized(results: list) -> list:
    """Sort multi-row point-query hits by (key, rowid).

    Bulk deletes replay in ascending key order, which can leave surviving
    *duplicate* copies at different physical positions than submission-order
    deletes would (the documented ``execute_batch`` caveat), so a later
    point query may return the same hit set in a different order.  Row
    *sets* must still match exactly.
    """
    out = []
    for result in results:
        if isinstance(result, list):
            out.append(
                sorted(result, key=lambda row: (row.key, row.rowid))
            )
        else:
            out.append(result)
    return out


class TestPolicyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 120))
    def test_read_workloads_fully_identical(self, seed, size):
        rng = np.random.default_rng(seed)
        operations = read_workload(rng, size)
        serial_engine, serial = run_policy(SerialPolicy(), operations)
        for policy in policies(rng)[1:]:
            engine, outcome = run_policy(policy, operations)
            assert outcome.results == serial.results
            assert outcome.errors == serial.errors
            assert outcome.operations == serial.operations
            # Reads are exact on the batched paths: every counter field
            # matches per-operation dispatch.
            assert engine.counter.snapshot() == serial_engine.counter.snapshot()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 120))
    def test_mixed_workloads_identical_results_bounded_charges(
        self, seed, size
    ):
        rng = np.random.default_rng(seed)
        operations = mixed_workload(rng, size)
        serial_engine, serial = run_policy(SerialPolicy(), operations)
        serial_counts = serial_engine.counter.snapshot()
        for policy in policies(rng)[1:]:
            engine, outcome = run_policy(policy, operations)
            assert normalized(outcome.results) == normalized(serial.results)
            assert outcome.errors == serial.errors
            counts = engine.counter.snapshot()
            assert counts.index_probes == serial_counts.index_probes
            for field in (
                "random_reads",
                "random_writes",
                "seq_reads",
                "seq_writes",
            ):
                assert getattr(counts, field) <= getattr(serial_counts, field)
            assert np.array_equal(
                np.sort(engine.table.keys()),
                np.sort(serial_engine.table.keys()),
            )
            engine.table.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 60))
    def test_update_runs_exactly_identical(self, seed, size):
        # Key updates are applied in submission order on the bulk path, so
        # even *duplicate* sources and consecutive update runs must match
        # per-operation dispatch exactly -- results and every counter field.
        rng = np.random.default_rng(seed)
        fresh = iter((2 * rng.permutation(np.arange(5_000, 8_000)) + 1).tolist())
        operations = []
        for _ in range(size):
            old = int(
                rng.choice([STRADDLE_KEY, int(rng.integers(0, 1_000))])
            )
            operations.append(Update(old_key=old, new_key=int(next(fresh))))
        serial_engine, serial = run_policy(SerialPolicy(), operations)
        for policy in policies(rng)[1:]:
            engine, outcome = run_policy(policy, operations)
            assert outcome.results == serial.results
            assert outcome.errors == serial.errors
            assert engine.counter.snapshot() == serial_engine.counter.snapshot()
            assert np.array_equal(
                np.sort(engine.table.keys()),
                np.sort(serial_engine.table.keys()),
            )


class TestAdaptivePolicy:
    def test_explores_upward_then_settles_on_best(self):
        policy = AdaptivePolicy(
            initial_batch_size=32, min_batch_size=8, max_batch_size=128
        )
        # Unexplored neighbours are probed largest-first.
        policy.observe(32, 32, 32 * 100.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 64
        policy.observe(64, 64, 64 * 50.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 128
        # 128 turns out slower; the neighbourhood {64, 128} is now fully
        # explored and 64 is clearly better, so the policy walks back.
        policy.observe(128, 128, 128 * 200.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 64
        # 64's whole neighbourhood {32, 64, 128} is explored and 64 wins:
        # the policy settles there and stays.
        policy.observe(64, 64, 64 * 50.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 64
        policy.observe(64, 64, 64 * 50.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 64

    def test_moves_down_when_smaller_is_faster(self):
        policy = AdaptivePolicy(
            initial_batch_size=32, min_batch_size=8, max_batch_size=64
        )
        policy.observe(32, 32, 32 * 100.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 64
        policy.observe(64, 64, 64 * 300.0, 0.0, longest_run=1)
        # 64 is worse: walk back to 32, then probe the unexplored 16, which
        # keeps improving, and descend to the floor.
        assert policy.current_batch_size == 32
        policy.observe(32, 32, 32 * 100.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 16
        policy.observe(16, 16, 16 * 20.0, 0.0, longest_run=1)
        assert policy.current_batch_size == 8
        policy.observe(8, 8, 8 * 10.0, 0.0, longest_run=1)
        # {8, 16} explored, 8 fastest: settle at the floor.
        assert policy.current_batch_size == 8

    def test_truncated_run_forces_growth(self):
        policy = AdaptivePolicy(
            initial_batch_size=16, min_batch_size=8, max_batch_size=64
        )
        policy.observe(16, 16, 16 * 10.0, 0.0, longest_run=16)
        assert policy.current_batch_size == 32

    def test_tail_slice_does_not_adapt(self):
        policy = AdaptivePolicy(
            initial_batch_size=32, min_batch_size=8, max_batch_size=128
        )
        policy.observe(32, 5, 5 * 1000.0, 0.0, longest_run=5)
        assert policy.current_batch_size == 32
        assert policy._estimates == {}

    def test_respects_bounds(self):
        policy = AdaptivePolicy(
            initial_batch_size=512, min_batch_size=64, max_batch_size=256
        )
        assert policy.current_batch_size == 256
        with pytest.raises(ValueError):
            AdaptivePolicy(min_batch_size=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(min_batch_size=64, max_batch_size=32)

    def test_records_observations_and_sizes(self):
        engine = build_engine()
        policy = AdaptivePolicy(
            initial_batch_size=8, min_batch_size=4, max_batch_size=64
        )
        operations = read_workload(np.random.default_rng(1), 50)
        outcome = policy.execute(engine, operations)
        assert outcome.operations == 50
        assert sum(policy.chosen_batch_sizes) == 50
        assert len(policy.observations) == len(policy.chosen_batch_sizes)
        sizes, counts, walls, simulated, runs = zip(*policy.observations)
        assert all(w > 0 for w in walls)
        assert all(s >= 0 for s in simulated)


class TestRunGrouping:
    def test_longest_groupable_run(self):
        assert longest_groupable_run([]) == 0
        ops = [
            PointQuery(key=1),
            PointQuery(key=2),
            PointQuery(key=3, columns=("a1",)),
            RangeQuery(low=0, high=5),
            RangeQuery(low=1, high=2),
            RangeQuery(low=1, high=2, aggregate=Aggregate.SUM),
            Insert(key=7),
            Delete(key=7),
            Update(old_key=1, new_key=3),
            Update(old_key=5, new_key=9),
            Update(old_key=11, new_key=13),
        ]
        # Longest run: the three trailing updates.
        assert longest_groupable_run(ops) == 3
        # Column changes break point-query runs; SUM aggregates are
        # singletons.
        assert longest_groupable_run(ops[:3]) == 2
        assert longest_groupable_run(ops[5:6]) == 0

    def test_vectorized_policy_validates_batch_size(self):
        with pytest.raises(ValueError):
            VectorizedPolicy(batch_size=0)
