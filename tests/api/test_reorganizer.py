"""Incremental reorganization: budgeted drains, staleness, background mode.

The inline lifecycle (``tests/api/test_session_reorg.py``) replans every
drifted chunk inside the execute call that trips the check.  These tests
cover the :class:`Reorganizer` wrapper: the same replans happen -- and pay
off the same way -- but in budgeted slices between execute calls (or on a
background worker), with generation-checked staleness detection requeuing
replans that raced a write.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Database,
    ReorgAction,
    Reorganizer,
    ReorgPolicy,
    VectorizedPolicy,
)
from repro.workload.distributions import EarlySkewSampler
from repro.workload.generator import WorkloadGenerator, WorkloadMix

NUM_ROWS = 8_192
CHUNK_SIZE = 2_048
BLOCK_VALUES = 128

INSERT_HEAVY = WorkloadMix(name="insert-heavy", q4_insert=0.9, q1_point=0.1)
POINT_HEAVY = WorkloadMix(
    name="point-heavy",
    q1_point=0.97,
    q2_range_count=0.03,
    read_sampler=EarlySkewSampler(),
)


def keys() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64) * 2


def generator(seed: int) -> WorkloadGenerator:
    return WorkloadGenerator(
        keys(), domain_low=0, domain_high=2 * NUM_ROWS - 2, seed=seed
    )


def planned_db() -> Database:
    training = generator(seed=3).generate(INSERT_HEAVY, 1_200)
    return Database.plan_for(
        training, keys(), chunk_size=CHUNK_SIZE, block_values=BLOCK_VALUES
    )


def policy() -> ReorgPolicy:
    return ReorgPolicy(drift_threshold=0.25, min_chunk_operations=200)


def run_drifted_phase(reorg, *, rounds: int = 6):
    db = planned_db()
    drifted = generator(seed=9).generate(POINT_HEAVY, 3_000)
    operations = list(drifted)
    per_round = -(-len(operations) // rounds)
    per_call = []
    with db.session(
        execution=VectorizedPolicy(batch_size=256), reorg=reorg
    ) as session:
        for start in range(0, len(operations), per_round):
            outcome = session.execute(operations[start : start + per_round])
            per_call.append(outcome)
    return db, session, per_call


class TestIncrementalDrain:
    def test_incremental_replans_match_inline_payoff(self):
        _, control, _ = run_drifted_phase(None)
        _, inline, _ = run_drifted_phase(policy())
        db, incremental, _ = run_drifted_phase(
            Reorganizer(policy(), chunk_budget=1)
        )
        control_s = control.report().simulated_seconds
        inline_s = inline.report().simulated_seconds
        incremental_s = incremental.report().simulated_seconds
        assert incremental.report().replans >= 1
        # The incremental lifecycle still pays for itself within the phase.
        assert incremental_s < control_s
        # And keeps most of the inline cut (it defers replans, so rounds
        # served before a chunk's turn still pay the old layout's cost).
        assert control_s - incremental_s >= 0.5 * (control_s - inline_s)
        db.check_invariants()

    def test_chunk_budget_bounds_replans_per_execute(self):
        _, session, per_call = run_drifted_phase(
            Reorganizer(policy(), chunk_budget=1), rounds=12
        )
        assert session.report().replans >= 1
        for outcome in per_call:
            replanned = [d for d in outcome.reorg_decisions if d.replanned]
            assert len(replanned) <= 1

    def test_ns_budget_bounds_slice_work(self):
        # A tiny ns budget still makes progress (>= 1 chunk per slice) but
        # never applies two replans in one slice.
        _, session, per_call = run_drifted_phase(
            Reorganizer(policy(), chunk_budget=None, ns_budget=1.0), rounds=12
        )
        assert session.report().replans >= 1
        for outcome in per_call:
            replanned = [d for d in outcome.reorg_decisions if d.replanned]
            assert len(replanned) <= 1

    def test_close_drains_pending_queue(self):
        # One big execute enqueues several drifted chunks; budget 1 applies
        # only one inline, close() drains the rest.
        reorganizer = Reorganizer(policy(), chunk_budget=1)
        db, session, _ = run_drifted_phase(reorganizer, rounds=1)
        assert reorganizer.pending_chunks() == []
        assert session.report().replans >= 1
        db.check_invariants()

    def test_results_stay_correct_under_incremental_reorg(self):
        db, session, _ = run_drifted_phase(Reorganizer(policy()))
        assert session.report().replans >= 1
        verification = generator(seed=21).generate(POINT_HEAVY, 400)
        control_db = planned_db()
        expected = control_db.session().execute(list(verification))
        got = db.session().execute(list(verification))
        assert [r if not isinstance(r, list) else len(r) for r in got.results] \
            == [r if not isinstance(r, list) else len(r) for r in expected.results]

    def test_decisions_are_recorded_once(self):
        _, session, per_call = run_drifted_phase(
            Reorganizer(policy(), chunk_budget=1)
        )
        from_results = [d for o in per_call for d in o.reorg_decisions]
        from_results += [
            d
            for d in session.reorg_decisions
            if d not in from_results
        ]
        assert len(session.reorg_decisions) == len(from_results)


class TestStaleness:
    def test_raced_write_is_requeued_not_applied(self):
        db = planned_db()
        drifted = generator(seed=9).generate(POINT_HEAVY, 3_000)
        reorg = policy()
        with db.session(execution=VectorizedPolicy(batch_size=256)) as session:
            session.execute(list(drifted))
        candidates = reorg.scan(db, force=True)
        assert candidates, "drifted phase should produce candidates"
        chunk_index = candidates[0]
        action = reorg.decide_chunk(db, chunk_index)
        assert isinstance(action, ReorgAction)
        # A write lands on the chunk after the plan was solved: the chunk's
        # generation moves, so the apply phase must refuse the stale plan.
        generation_before = db.table.chunk_generation(chunk_index)
        db.table.insert(int(db.table.chunk_bounds[chunk_index - 1]) if chunk_index else 0)
        assert db.table.chunk_generation(chunk_index) != generation_before
        assert reorg.apply_action(db, action) is None
        assert reorg.replans == 0
        # A fresh decision on the new state applies cleanly.
        retry = reorg.decide_chunk(db, chunk_index)
        assert isinstance(retry, ReorgAction)
        decision = reorg.apply_action(db, retry)
        assert decision is not None and decision.replanned
        db.check_invariants()

    def test_drain_requeues_stale_action(self, monkeypatch):
        # Simulate the background race deterministically: the decision the
        # drain receives was solved before a write landed on the chunk, so
        # the apply refuses it and the drain requeues the chunk.
        db = planned_db()
        drifted = generator(seed=9).generate(POINT_HEAVY, 3_000)
        reorganizer = Reorganizer(policy(), chunk_budget=1)
        with db.session(execution=VectorizedPolicy(batch_size=256)) as session:
            session.execute(list(drifted))
        reorganizer.attach(db)
        candidates = reorganizer.policy.scan(db, force=True)
        assert candidates
        chunk_index = candidates[0]
        stale = reorganizer.policy.decide_chunk(db, chunk_index)
        assert isinstance(stale, ReorgAction)
        db.table.insert(int(2 * CHUNK_SIZE * chunk_index))
        monkeypatch.setattr(
            reorganizer.policy, "decide_chunk", lambda *_: stale
        )
        spent = reorganizer._process(db, chunk_index)
        assert spent == 0.0
        assert reorganizer.requeues == 1
        assert reorganizer.pending_chunks() == [chunk_index]
        assert reorganizer.policy.replans == 0


class TestBackgroundMode:
    def test_background_worker_replans_and_stops(self):
        reorganizer = Reorganizer(policy(), chunk_budget=1, background=True)
        db = planned_db()
        drifted = generator(seed=9).generate(POINT_HEAVY, 3_000)
        operations = list(drifted)
        per_round = -(-len(operations) // 6)
        with db.session(
            execution=VectorizedPolicy(batch_size=256), reorg=reorganizer
        ) as session:
            for start in range(0, len(operations), per_round):
                session.execute(operations[start : start + per_round])
                assert reorganizer.wait_idle(timeout=30.0)
        assert session.report().replans >= 1
        # The worker is stopped by close() (white-box read under the lock).
        with reorganizer._state:
            assert reorganizer._thread is None
        db.check_invariants()
        # Served results stay correct after background replans.
        verification = generator(seed=21).generate(POINT_HEAVY, 200)
        control_db = planned_db()
        expected = control_db.session().execute(list(verification))
        got = db.session().execute(list(verification))
        assert [r if not isinstance(r, list) else len(r) for r in got.results] \
            == [r if not isinstance(r, list) else len(r) for r in expected.results]

    def test_exceptional_exit_stops_worker_without_reorganizing(self):
        reorganizer = Reorganizer(policy(), background=True)
        db = planned_db()
        drifted = generator(seed=9).generate(POINT_HEAVY, 600)
        with pytest.raises(RuntimeError, match="boom"):
            with db.session(reorg=reorganizer) as session:
                session.execute(list(drifted))
                raise RuntimeError("boom")
        assert session.closed
        with reorganizer._state:
            assert reorganizer._thread is None
        assert reorganizer.pending_chunks() == []


class TestValidation:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Reorganizer(chunk_budget=0)
        with pytest.raises(ValueError):
            Reorganizer(ns_budget=0.0)

    def test_reorganizer_shares_policy_binding(self):
        reorganizer = Reorganizer(policy())
        first, second = planned_db(), planned_db()
        reorganizer.attach(first)
        with pytest.raises(ValueError, match="fresh policy"):
            reorganizer.attach(second)
