"""Threaded stress tests: N sessions over one engine, reorg in background.

One :class:`Database` hands out several live :class:`Session`s (one per
thread); the table's chunk-granular latches isolate their executions, and
a shared background :class:`Reorganizer` publishes copy-on-write replans
while the sessions run.  The tests pin three contracts:

* **serial-oracle equality** -- when the sessions' workloads commute (reads
  against a stable key region, writes in per-session disjoint regions),
  every session's results and the final table state equal a serial run of
  the same operation lists on a fresh identical database, under *any*
  interleaving;
* **structural integrity** -- ``Table.check_invariants()`` holds after the
  threads join, whatever the interleaving did;
* **replan accounting** -- no replan is lost (the queue drains to empty by
  the last close) or double-applied (the generation-checked publish
  refuses a repeated or raced action, counting a requeue instead), and the
  shielded background worker swallows no exceptions (``errors == 0``).

CI runs this module 5x with randomized ``PYTHONHASHSEED`` and a tight
thread-switch interval (``REPRO_SWITCH_INTERVAL``) to widen race windows;
see the ``concurrency`` marker in ``tests/conftest.py``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import (
    Database,
    Reorganizer,
    ReorgAction,
    ReorgPolicy,
    SerialPolicy,
    VectorizedPolicy,
)
from repro.workload.distributions import EarlySkewSampler
from repro.workload.generator import WorkloadGenerator, WorkloadMix
from repro.workload.operations import (
    Delete,
    Insert,
    MultiInsert,
    MultiPointQuery,
    PointQuery,
    RangeQuery,
    Update,
)

pytestmark = pytest.mark.concurrency

NUM_ROWS = 8_192
CHUNK_SIZE = 1_024
BLOCK_VALUES = 128
NUM_SESSIONS = 4

#: Reads stay below this key; writes stay at or above it.  Inserts and
#: deletes in the upper region can never change a read's result, so any
#: interleaving of the sessions serves the same answers as a serial run.
STABLE_LIMIT = NUM_ROWS  # keys 0..NUM_ROWS-2 (even) live in the lower chunks


def make_keys() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64) * 2


def make_db() -> Database:
    keys = make_keys()
    payload = (keys * 3).reshape(-1, 1)
    return Database.from_rows(
        keys,
        payload,
        chunk_size=CHUNK_SIZE,
        block_values=BLOCK_VALUES,
    )


def read_ops(seed: int, count: int) -> list:
    """Point/range reads confined to the stable lower key region."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(count // 2):
        ops.append(PointQuery(key=int(rng.integers(0, STABLE_LIMIT))))
        low = int(rng.integers(0, STABLE_LIMIT - 64))
        ops.append(RangeQuery(low=low, high=low + 63))
    return ops


def write_region(session_index: int) -> tuple[int, int]:
    """Each session's exclusive write region (upper half of the domain)."""
    width = NUM_ROWS // NUM_SESSIONS
    base = NUM_ROWS + session_index * width
    return base, base + width


def mixed_ops(
    session_index: int, seed: int, count: int, *, with_payload: bool = True
) -> list:
    """Reads in the stable region, writes in the session's own region."""
    rng = np.random.default_rng(seed)
    low, high = write_region(session_index)
    inserted: list[int] = []
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.5:
            ops.append(PointQuery(key=int(rng.integers(0, STABLE_LIMIT))))
        elif roll < 0.7:
            span_low = int(rng.integers(0, STABLE_LIMIT - 64))
            ops.append(RangeQuery(low=span_low, high=span_low + 63))
        elif roll < 0.9 or not inserted:
            key = int(rng.integers(low, high)) * 2 + 1  # odd: never collides
            inserted.append(key)
            payload = (key * 3,) if with_payload else None
            ops.append(Insert(key=key, payload=payload))
        else:
            ops.append(Delete(key=inserted.pop()))
    return ops


def normalize(operations: list, results: list) -> list:
    """Results made interleaving-independent.

    Row ids are allocation-order artifacts of the whole database, so
    insert results (and the ``rowid`` attribute of returned rows) compare
    by success only; rows compare by (key, payload).
    """
    normalized = []
    for operation, result in zip(operations, results):
        if isinstance(result, list) and (
            not result or hasattr(result[0], "payload")
        ):
            normalized.append(
                sorted(
                    (row.key, tuple(sorted(row.payload.items())))
                    for row in result
                )
            )
        elif isinstance(operation, (Insert, MultiInsert)):
            normalized.append(result is not None)
        elif isinstance(result, (int, np.integer)):
            normalized.append(int(result))
        else:
            normalized.append(result is not None)
    return normalized


def run_threads(db, oplists, *, policy_factory, reorg=None, rounds=8):
    """Execute one op list per thread, each in its own session, in rounds."""
    outcomes: list[list | None] = [None] * len(oplists)
    failures: list[BaseException] = []
    barrier = threading.Barrier(len(oplists))

    def work(index: int) -> None:
        try:
            ops = oplists[index]
            per_round = -(-len(ops) // rounds)
            with db.session(execution=policy_factory(), reorg=reorg) as session:
                barrier.wait(timeout=30.0)
                collected = []
                for start in range(0, len(ops), per_round):
                    outcome = session.execute(ops[start : start + per_round])
                    collected.extend(outcome.results)
                outcomes[index] = collected
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            failures.append(exc)
            raise

    threads = [
        threading.Thread(target=work, args=(i,), name=f"session-{i}")
        for i in range(len(oplists))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not failures, f"session thread raised: {failures[0]!r}"
    assert all(outcome is not None for outcome in outcomes)
    return outcomes


def run_serial_oracle(oplists, *, db_factory=make_db):
    """The same op lists, one session after another, on a fresh database."""
    db = db_factory()
    outcomes = []
    for ops in oplists:
        with db.session() as session:
            outcomes.append(session.execute(list(ops)).results)
    return db, outcomes


class TestConcurrentReaders:
    def test_readers_match_serial_oracle(self, tight_switch_interval):
        db = make_db()
        oplists = [read_ops(seed=10 + i, count=400) for i in range(NUM_SESSIONS)]
        outcomes = run_threads(
            db, oplists, policy_factory=lambda: VectorizedPolicy(batch_size=64)
        )
        _, expected = run_serial_oracle(oplists)
        for ops, got, want in zip(oplists, outcomes, expected):
            assert normalize(ops, got) == normalize(ops, want)
        db.check_invariants()

    def test_serial_and_vectorized_sessions_interleave(self, tight_switch_interval):
        # Mixed policies over one engine: per-op dispatch and the batched
        # fast path share the chunk latches.
        db = make_db()
        oplists = [read_ops(seed=31 + i, count=300) for i in range(2)]
        policies = iter([SerialPolicy, lambda: VectorizedPolicy(batch_size=32)])
        outcomes = run_threads(
            db, oplists, policy_factory=lambda: next(policies)()
        )
        _, expected = run_serial_oracle(oplists)
        for ops, got, want in zip(oplists, outcomes, expected):
            assert normalize(ops, got) == normalize(ops, want)

    def test_batched_multi_ops_match_oracle(self, tight_switch_interval):
        db = make_db()
        rng = np.random.default_rng(5)
        oplists = [
            [
                MultiPointQuery(
                    keys=tuple(
                        int(k) for k in rng.integers(0, STABLE_LIMIT, 32)
                    )
                )
                for _ in range(24)
            ]
            for _ in range(NUM_SESSIONS)
        ]
        def rows_of(batch):
            return [
                sorted(
                    (row.key, tuple(sorted(row.payload.items())))
                    for row in per_key
                )
                for per_key in batch
            ]

        outcomes = run_threads(db, oplists, policy_factory=SerialPolicy)
        _, expected = run_serial_oracle(oplists)
        for got, want in zip(outcomes, expected):
            assert [rows_of(b) for b in got] == [rows_of(b) for b in want]


class TestConcurrentMixedWorkloads:
    def test_disjoint_writers_match_serial_oracle(self, tight_switch_interval):
        db = make_db()
        oplists = [
            mixed_ops(i, seed=40 + i, count=400) for i in range(NUM_SESSIONS)
        ]
        outcomes = run_threads(
            db, oplists, policy_factory=lambda: VectorizedPolicy(batch_size=64)
        )
        oracle_db, expected = run_serial_oracle(oplists)
        for ops, got, want in zip(oplists, outcomes, expected):
            assert normalize(ops, got) == normalize(ops, want)
        assert np.array_equal(
            np.sort(db.table.keys()), np.sort(oracle_db.table.keys())
        )
        db.check_invariants()

    def test_same_chunk_writers_serialize_safely(self, tight_switch_interval):
        # All sessions hammer the same upper chunk with distinct keys: the
        # exclusive chunk latch serializes them, so every insert survives.
        db = make_db()
        per_session = 200
        oplists = [
            [
                Insert(key=2 * NUM_ROWS + 1 + 2 * (i * per_session + j))
                for j in range(per_session)
            ]
            for i in range(NUM_SESSIONS)
        ]
        run_threads(db, oplists, policy_factory=SerialPolicy)
        assert db.num_rows == NUM_ROWS + NUM_SESSIONS * per_session
        inserted = set()
        for ops in oplists:
            inserted.update(op.key for op in ops)
        live = set(db.table.keys().tolist())
        assert inserted <= live
        db.check_invariants()

    def test_concurrent_bulk_writers_disjoint_chunks(self, tight_switch_interval):
        db = make_db()
        oplists = []
        for i in range(NUM_SESSIONS):
            low, high = write_region(i)
            keys = tuple(int(k) * 2 + 1 for k in range(low, low + 128))
            oplists.append(
                [MultiInsert(keys=keys[j : j + 32]) for j in range(0, 128, 32)]
            )
        run_threads(db, oplists, policy_factory=SerialPolicy)
        assert db.num_rows == NUM_ROWS + NUM_SESSIONS * 128
        db.check_invariants()

    def test_concurrent_updates_in_own_regions(self, tight_switch_interval):
        # Each session corrects keys it first inserted in its own region;
        # cross-chunk moves latch source and target together.
        db = make_db()
        oplists = []
        for i in range(NUM_SESSIONS):
            low, _ = write_region(i)
            keys = [low * 2 + 1 + 4 * j for j in range(64)]
            ops: list = [Insert(key=key) for key in keys]
            ops.extend(Update(old_key=key, new_key=key + 2) for key in keys)
            oplists.append(ops)
        outcomes = run_threads(db, oplists, policy_factory=SerialPolicy)
        oracle_db, expected = run_serial_oracle(oplists)
        for ops, got, want in zip(oplists, outcomes, expected):
            assert normalize(ops, got) == normalize(ops, want)
        assert np.array_equal(
            np.sort(db.table.keys()), np.sort(oracle_db.table.keys())
        )
        db.check_invariants()

    def test_session_reports_account_every_operation(self, tight_switch_interval):
        db = make_db()
        oplists = [read_ops(seed=70 + i, count=200) for i in range(NUM_SESSIONS)]
        sessions: list = []
        barrier = threading.Barrier(NUM_SESSIONS)

        def work(index: int) -> None:
            session = db.session(execution=VectorizedPolicy(batch_size=64))
            sessions.append(session)
            barrier.wait(timeout=30.0)
            session.execute(oplists[index])
            session.close()

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(NUM_SESSIONS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert sum(s.report().operations for s in sessions) == sum(
            len(ops) for ops in oplists
        )


# --------------------------------------------------------------------- #
# Background reorganization under concurrent sessions
# --------------------------------------------------------------------- #

INSERT_HEAVY = WorkloadMix(name="insert-heavy", q4_insert=0.9, q1_point=0.1)
POINT_HEAVY = WorkloadMix(
    name="point-heavy",
    q1_point=0.97,
    q2_range_count=0.03,
    read_sampler=EarlySkewSampler(),
)


def planned_db() -> Database:
    training = WorkloadGenerator(
        make_keys(), domain_low=0, domain_high=2 * NUM_ROWS - 2, seed=3
    ).generate(INSERT_HEAVY, 1_200)
    return Database.plan_for(
        training, make_keys(), chunk_size=CHUNK_SIZE, block_values=BLOCK_VALUES
    )


def reorg_policy() -> ReorgPolicy:
    return ReorgPolicy(drift_threshold=0.25, min_chunk_operations=200)


def drifted_shards(total_ops: int, shards: int) -> list[list]:
    drifted = WorkloadGenerator(
        make_keys(), domain_low=0, domain_high=2 * NUM_ROWS - 2, seed=9
    ).generate(POINT_HEAVY, total_ops)
    operations = list(drifted)
    per_shard = -(-len(operations) // shards)
    return [
        operations[start : start + per_shard]
        for start in range(0, len(operations), per_shard)
    ]


class TestBackgroundReorgStress:
    def test_readers_with_background_reorg_match_oracle(
        self, tight_switch_interval
    ):
        db = planned_db()
        reorganizer = Reorganizer(reorg_policy(), chunk_budget=1, background=True)
        shards = drifted_shards(6_000, NUM_SESSIONS)
        outcomes = run_threads(
            db,
            shards,
            policy_factory=lambda: VectorizedPolicy(batch_size=256),
            reorg=reorganizer,
        )
        _, expected = run_serial_oracle(shards, db_factory=planned_db)
        for ops, got, want in zip(shards, outcomes, expected):
            assert normalize(ops, got) == normalize(ops, want)
        # The close of the last session drains the queue to empty; the
        # drifted phase must have produced at least one landed replan.
        assert reorganizer.pending_chunks() == []
        assert reorganizer.replans >= 1
        assert reorganizer.errors == 0
        db.check_invariants()

    def test_mixed_sessions_with_background_reorg(self, tight_switch_interval):
        db = planned_db()
        reorganizer = Reorganizer(reorg_policy(), chunk_budget=1, background=True)
        oplists = [
            mixed_ops(i, seed=80 + i, count=600, with_payload=False)
            for i in range(NUM_SESSIONS)
        ]
        run_threads(
            db,
            oplists,
            policy_factory=lambda: VectorizedPolicy(batch_size=128),
            reorg=reorganizer,
        )
        oracle_db, _ = run_serial_oracle(oplists, db_factory=planned_db)
        assert np.array_equal(
            np.sort(db.table.keys()), np.sort(oracle_db.table.keys())
        )
        assert reorganizer.pending_chunks() == []
        assert reorganizer.errors == 0
        db.check_invariants()

    def test_worker_runs_until_last_session_closes(self):
        db = planned_db()
        reorganizer = Reorganizer(reorg_policy(), background=True)

        def worker_thread():
            # ``_thread`` is rw-guarded by ``_state`` (GUARDED_BY): read it
            # under the declared lock so the Eraser-lite debug pass stays
            # clean even for this white-box peek.
            with reorganizer._state:
                return reorganizer._thread

        first = db.session(reorg=reorganizer)
        second = db.session(reorg=reorganizer)
        assert worker_thread() is not None
        first.close()
        # One session remains: the worker (and queue) must survive.
        assert worker_thread() is not None
        second.close()
        assert worker_thread() is None

    def test_decisions_reported_exactly_once_across_sessions(
        self, tight_switch_interval
    ):
        db = planned_db()
        reorganizer = Reorganizer(reorg_policy(), chunk_budget=1)
        shards = drifted_shards(6_000, NUM_SESSIONS)
        reported = [0] * NUM_SESSIONS
        barrier = threading.Barrier(NUM_SESSIONS)

        def work(index: int) -> None:
            ops = shards[index]
            per_round = -(-len(ops) // 6)
            with db.session(
                execution=VectorizedPolicy(batch_size=256), reorg=reorganizer
            ) as session:
                barrier.wait(timeout=30.0)
                for start in range(0, len(ops), per_round):
                    session.execute(ops[start : start + per_round])
            reported[index] = len(session.reorg_decisions)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(NUM_SESSIONS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        # Every decision lands in exactly one session's log: none dropped,
        # none double-reported by racing watermark reads.
        assert sum(reported) == len(reorganizer.policy.decisions)
        assert reorganizer.replans >= 1


class TestStaleReplanRace:
    """PR 4's unlocked-decide model: a write between decide and apply."""

    def test_write_between_decide_and_apply_requeues_not_applies(self):
        # Deterministic race regression: the decision solves its plan, a
        # writer bumps the chunk's generation before the apply, and the
        # publish must refuse the stale replan -- requeuing it for a fresh
        # decision rather than applying a layout priced on dead data.
        db = planned_db()
        with db.session(execution=VectorizedPolicy(batch_size=256)) as session:
            session.execute(drifted_shards(3_000, 1)[0])
        reorganizer = Reorganizer(reorg_policy(), chunk_budget=None)
        reorganizer.attach(db)
        policy = reorganizer.policy
        real_decide = policy.decide_chunk
        sabotaged: set[int] = set()

        def key_routed_to(chunk_index: int) -> int:
            if chunk_index == 0:
                return 1
            return int(db.table.chunk_bounds[chunk_index - 1]) + 1

        def racing_decide(database, chunk_index):
            outcome = real_decide(database, chunk_index)
            if isinstance(outcome, ReorgAction) and chunk_index not in sabotaged:
                sabotaged.add(chunk_index)
                database.table.insert(key_routed_to(chunk_index))
            return outcome

        policy.decide_chunk = racing_decide
        try:
            candidates = policy.scan(db, force=True)
            assert candidates, "the drifted phase must produce candidates"
            reorganizer._enqueue(candidates)
            reorganizer._drain_slice(db, unbounded=True)
        finally:
            policy.decide_chunk = real_decide
        assert sabotaged, "at least one decision must have been raced"
        assert reorganizer.requeues >= len(sabotaged)
        # Requeued chunks were re-decided on fresh state and applied:
        # nothing is lost, and no stale plan landed.
        assert reorganizer.pending_chunks() == []
        replanned = [d.chunk_index for d in policy.decisions if d.replanned]
        assert set(sabotaged) <= set(replanned)
        assert len(replanned) == len(set(replanned)), "a chunk replanned twice"
        db.check_invariants()

    def test_apply_refuses_resubmitted_action(self):
        # Double-apply protection end-to-end: replaying an already-applied
        # action is refused by the generation check.
        db = planned_db()
        with db.session(execution=VectorizedPolicy(batch_size=256)) as session:
            session.execute(drifted_shards(3_000, 1)[0])
        policy = reorg_policy()
        candidates = policy.scan(db, force=True)
        assert candidates
        action = policy.decide_chunk(db, candidates[0])
        assert isinstance(action, ReorgAction)
        first = policy.apply_action(db, action)
        assert first is not None and first.replanned
        assert policy.apply_action(db, action) is None
        assert policy.replans == 1


class TestMonitorUnderConcurrentSessions:
    def test_counts_complete_under_concurrent_flushes(
        self, tight_switch_interval
    ):
        # The monitor's ingest lock must not lose a racing count update:
        # with N sessions flushing batches concurrently, the per-chunk
        # totals equal the number of operations dispatched.
        keys = make_keys()
        db = Database.from_rows(
            keys, chunk_size=CHUNK_SIZE, block_values=BLOCK_VALUES, monitor=True
        )
        per_session = 512
        oplists = [
            [
                PointQuery(key=int(k))
                for k in np.random.default_rng(90 + i).integers(
                    0, STABLE_LIMIT, per_session
                )
            ]
            for i in range(NUM_SESSIONS)
        ]
        run_threads(
            db, oplists, policy_factory=lambda: VectorizedPolicy(batch_size=64)
        )
        monitor = db.monitor
        total = sum(
            sum(monitor.operation_counts(chunk).values())
            for chunk in monitor.observed_chunks()
        )
        assert total == NUM_SESSIONS * per_session
