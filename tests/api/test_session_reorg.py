"""The automatic reorganization lifecycle: drift detection + cost gate.

These tests drive the Fig. 10 A->C loop end-to-end through the session API:
a database planned for one workload phase sees a drifted phase, the
session's :class:`ReorgPolicy` detects the per-chunk mix shift, solves a
candidate layout for the observed sample, charges the modeled savings
against the rebuild cost, and replans in place -- measurably cutting the
simulated cost of serving the drifted phase versus a no-reorg session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Database, ReorgPolicy, VectorizedPolicy
from repro.core.monitor import mix_distance
from repro.workload.distributions import EarlySkewSampler
from repro.workload.generator import WorkloadGenerator, WorkloadMix

NUM_ROWS = 8_192
CHUNK_SIZE = 2_048
BLOCK_VALUES = 128

INSERT_HEAVY = WorkloadMix(name="insert-heavy", q4_insert=0.9, q1_point=0.1)
POINT_HEAVY = WorkloadMix(
    name="point-heavy",
    q1_point=0.97,
    q2_range_count=0.03,
    read_sampler=EarlySkewSampler(),
)


def keys() -> np.ndarray:
    return np.arange(NUM_ROWS, dtype=np.int64) * 2


def generator(seed: int) -> WorkloadGenerator:
    return WorkloadGenerator(
        keys(), domain_low=0, domain_high=2 * NUM_ROWS - 2, seed=seed
    )


def planned_db() -> Database:
    training = generator(seed=3).generate(INSERT_HEAVY, 1_200)
    return Database.plan_for(
        training, keys(), chunk_size=CHUNK_SIZE, block_values=BLOCK_VALUES
    )


def run_drifted_phase(reorg: ReorgPolicy | None, *, rounds: int = 6):
    """Serve the drifted (point-heavy) phase in rounds; return the session."""
    db = planned_db()
    drifted = generator(seed=9).generate(POINT_HEAVY, 3_000)
    operations = list(drifted)
    per_round = -(-len(operations) // rounds)
    with db.session(
        execution=VectorizedPolicy(batch_size=256), reorg=reorg
    ) as session:
        for start in range(0, len(operations), per_round):
            session.execute(operations[start : start + per_round])
    return db, session


class TestMixDistance:
    def test_bounds_and_symmetry(self):
        a = {"point_query": 0.9, "insert": 0.1}
        b = {"insert": 0.1, "point_query": 0.9}
        c = {"range_count": 1.0}
        assert mix_distance(a, b) == 0.0
        assert mix_distance(a, c) == 1.0
        # Against an empty (all-zero) mix only half the mass differs.
        assert mix_distance(a, {}) == pytest.approx(0.5)
        d = {"point_query": 0.5, "insert": 0.5}
        assert mix_distance(a, d) == pytest.approx(0.4)
        assert mix_distance(d, a) == pytest.approx(0.4)


class TestReorgLifecycle:
    def test_auto_replan_cuts_simulated_cost_after_drift(self):
        _, control = run_drifted_phase(None)
        reorg = ReorgPolicy(drift_threshold=0.25, min_chunk_operations=200)
        db, session = run_drifted_phase(reorg)
        control_report = control.report()
        reorg_report = session.report()
        assert reorg_report.replans >= 1
        # The replans pay for themselves within the drifted phase: total
        # simulated cost (including the rebuild charges) drops.
        assert (
            reorg_report.simulated_seconds < control_report.simulated_seconds
        )
        # Decisions carry the gate's arithmetic.
        replanned = [d for d in session.reorg_decisions if d.replanned]
        for decision in replanned:
            assert decision.drift >= 0.25
            assert decision.modeled_savings_ns is not None
            assert decision.modeled_savings_ns >= decision.rebuild_cost_ns
        db.check_invariants()

    def test_replanned_results_stay_correct(self):
        # A replan must be invisible to query semantics: the same drifted
        # phase returns identical results with and without reorganization.
        _, control = run_drifted_phase(None)
        db, session = run_drifted_phase(
            ReorgPolicy(drift_threshold=0.25, min_chunk_operations=200)
        )
        assert session.report().replans >= 1
        verification = generator(seed=21).generate(POINT_HEAVY, 400)
        control_db = planned_db()
        expected = control_db.session().execute(list(verification))
        got = db.session().execute(list(verification))
        # The drifted phases mutated both databases identically (insert-free
        # point-heavy mix leaves only q2/q1 reads), so results must agree.
        assert [r if not isinstance(r, list) else len(r) for r in got.results] \
            == [r if not isinstance(r, list) else len(r) for r in expected.results]

    def test_cost_gate_blocks_unprofitable_replans(self):
        reorg = ReorgPolicy(
            drift_threshold=0.25,
            min_chunk_operations=200,
            rebuild_margin=1e12,  # no modeled savings can clear this bar
        )
        _, session = run_drifted_phase(reorg)
        report = session.report()
        assert report.replans == 0
        gated = [d for d in report.reorg_decisions if not d.replanned]
        assert gated, "drift should still have been detected"
        for decision in gated:
            assert "cost gate" in decision.reason
            assert decision.current_cost_ns is not None
            assert decision.planned_cost_ns is not None

    def test_disabled_cost_gate_replans_on_drift_alone(self):
        reorg = ReorgPolicy(
            drift_threshold=0.25, min_chunk_operations=200, cost_gate=False
        )
        _, session = run_drifted_phase(reorg)
        report = session.report()
        assert report.replans >= 1
        for decision in report.reorg_decisions:
            if decision.replanned:
                assert decision.current_cost_ns is None

    def test_min_chunk_operations_defers_evaluation(self):
        reorg = ReorgPolicy(drift_threshold=0.0, min_chunk_operations=10**9)
        _, session = run_drifted_phase(reorg)
        assert session.report().reorg_decisions == []

    def test_check_interval_skips_calls_but_close_forces_one(self):
        db = planned_db()
        drifted = generator(seed=9).generate(POINT_HEAVY, 1_200)
        reorg = ReorgPolicy(
            drift_threshold=0.25, min_chunk_operations=100, check_interval=10**6
        )
        with db.session(
            execution=VectorizedPolicy(batch_size=256), reorg=reorg
        ) as session:
            session.execute(list(drifted))
            # Off-interval: no evaluation during the execute call ...
            assert session.reorg_decisions == []
        # ... but the close-time check bypasses the interval, so the drift
        # accumulated by the session's last calls is still evaluated once.
        assert session.report().reorg_decisions != []

    def test_exceptional_exit_skips_final_reorg_check(self):
        db = planned_db()
        drifted = generator(seed=9).generate(POINT_HEAVY, 1_200)
        reorg = ReorgPolicy(
            drift_threshold=0.25, min_chunk_operations=100, check_interval=10**6
        )
        with pytest.raises(RuntimeError, match="boom"):
            with db.session(
                execution=VectorizedPolicy(batch_size=256), reorg=reorg
            ) as session:
                session.execute(list(drifted))
                raise RuntimeError("boom")
        # The close-time check was skipped, not run against the failed call.
        assert session.closed
        assert session.report().reorg_decisions == []

    def test_reorg_policy_bound_to_one_database(self):
        reorg = ReorgPolicy(min_chunk_operations=1)
        first, second = planned_db(), planned_db()
        reorg.maybe_reorganize(first)
        with pytest.raises(ValueError, match="fresh policy"):
            reorg.maybe_reorganize(second)
        # Re-use with the same database (e.g. a later session) is fine.
        reorg.maybe_reorganize(first)

    def test_no_planner_means_no_reorg(self):
        db = Database.from_rows(
            keys(), chunk_size=CHUNK_SIZE, block_values=BLOCK_VALUES
        )
        drifted = generator(seed=9).generate(POINT_HEAVY, 600)
        with db.session(reorg=ReorgPolicy(min_chunk_operations=1)) as session:
            session.execute(list(drifted))
        assert session.report().reorg_decisions == []

    def test_untrained_chunk_adopts_baseline_before_replanning(self):
        # Train on operations confined to chunk 0 only; chunk 3 has no
        # baseline, so its first evaluated mix is adopted instead of
        # replanned against nothing.
        from repro.workload.operations import Insert, PointQuery, Workload

        chunk0_keys = keys()[: CHUNK_SIZE // 2]
        training = Workload(
            operations=[Insert(key=int(k) + 1) for k in chunk0_keys[:450]]
            + [PointQuery(key=int(k)) for k in chunk0_keys[:50]],
            name="chunk-0 only",
        )
        db = Database.plan_for(
            training, keys(), chunk_size=CHUNK_SIZE, block_values=BLOCK_VALUES
        )
        reorg = ReorgPolicy(drift_threshold=0.05, min_chunk_operations=50)
        top_keys = keys()[keys() >= 3 * CHUNK_SIZE * 2]
        probes = [int(k) for k in top_keys[:400]]
        with db.session(reorg=reorg) as session:
            session.execute([PointQuery(key=k) for k in probes])
            first_round = list(session.reorg_decisions)
            # Same mix again: no drift against the adopted baseline.
            session.execute([PointQuery(key=k) for k in probes])
        assert first_round == []
        assert all(not d.replanned for d in session.reorg_decisions)
