"""The Database/Session façade: construction, execution, compatibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    AdaptivePolicy,
    Database,
    SerialPolicy,
    VectorizedPolicy,
)
from repro.bench.harness import build_hap_database, run_workload
from repro.storage.engine import StorageEngine
from repro.storage.layouts import LayoutKind
from repro.workload.hap import HAPConfig, make_workload
from repro.workload.operations import (
    Delete,
    Insert,
    MultiUpdate,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)


def small_db(**overrides) -> Database:
    keys = np.arange(2_048, dtype=np.int64) * 2
    payload = np.arange(2_048 * 2, dtype=np.int64).reshape(-1, 2)
    defaults = dict(
        layout=LayoutKind.EQUI,
        chunk_size=512,
        block_values=64,
        partitions=8,
    )
    defaults.update(overrides)
    return Database.from_rows(keys, payload, **defaults)


class TestDatabaseConstruction:
    def test_from_rows_builds_multi_chunk_table(self):
        db = small_db()
        assert db.num_rows == 2_048
        assert db.num_chunks == 4
        db.check_invariants()

    def test_from_rows_rejects_casper_layout(self):
        with pytest.raises(ValueError, match="plan_for"):
            small_db(layout=LayoutKind.CASPER)

    def test_from_rows_layout_spec_governs_block_size(self):
        # A full LayoutSpec carries its own block size; the table and cost
        # constants must price that size, not the separate default.
        from repro.storage.cost_accounting import constants_for_block_values
        from repro.storage.layouts import LayoutSpec

        keys = np.arange(1_024, dtype=np.int64) * 2
        spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=4, block_values=256)
        db = Database.from_rows(keys, layout=spec, chunk_size=1_024)
        assert db.table.block_values == 256
        assert db.constants == constants_for_block_values(256)

    def test_plan_for_attaches_planner_and_monitor(self):
        keys = np.arange(2_048, dtype=np.int64) * 2
        training = Workload(
            operations=[PointQuery(key=int(k)) for k in keys[:256]],
            name="training",
        )
        db = Database.plan_for(
            training, keys, chunk_size=1_024, block_values=64
        )
        assert db.planner is not None
        assert db.monitor is not None
        assert db.engine.monitor is db.monitor
        assert len(db.planner.plans) == db.num_chunks
        db.check_invariants()

    def test_engine_compatibility_layer(self):
        # Pre-façade entry points stay reachable and observable.
        db = small_db(monitor=True)
        assert isinstance(db.engine, StorageEngine)
        outcome = db.engine.execute(PointQuery(key=20))
        assert [row.key for row in outcome.result] == [20]
        assert db.statistics.operations["point_query"] == 1
        assert db.statistics.mean_wall_ns("point_query") > 0.0
        # The engine feeds the same monitor the sessions use.
        assert db.monitor.observed_chunks() == [0]

    def test_monitor_attached_only_where_it_can_pay_off(self):
        # No planner -> nothing to replan -> no per-operation attribution
        # overhead on the hot path; opt in (or out) explicitly.
        assert small_db().monitor is None
        assert small_db(monitor=True).monitor is not None
        keys = np.arange(1_024, dtype=np.int64) * 2
        training = Workload(operations=[PointQuery(key=0)], name="t")
        planned = Database.plan_for(training, keys, chunk_size=1_024, block_values=64)
        assert planned.monitor is not None
        unmonitored = Database(planned.table, planner=planned.planner, monitor=False)
        assert unmonitored.monitor is None


class TestSessionExecution:
    def test_context_manager_and_close_semantics(self):
        db = small_db()
        with db.session() as session:
            assert not session.closed
            session.execute(PointQuery(key=0))
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.execute(PointQuery(key=0))
        session.close()  # idempotent
        report = session.report()  # reporting survives close
        assert report.operations == 1

    def test_single_operation_and_workload_inputs(self):
        db = small_db()
        session = db.session()
        single = session.execute(PointQuery(key=40))
        assert len(single.results) == 1
        workload = Workload(
            operations=[PointQuery(key=0), RangeQuery(low=0, high=100)]
        )
        multi = session.execute(workload)
        assert multi.operations == 2
        assert multi.results[1] == 51

    def test_results_match_engine_and_errors_counted(self):
        db = small_db()
        ops = [
            PointQuery(key=10),
            Insert(key=11),
            Delete(key=99_999),  # miss
            Update(old_key=12, new_key=13),
            RangeQuery(low=0, high=10),
        ]
        with db.session(execution=VectorizedPolicy(batch_size=2)) as session:
            outcome = session.execute(ops)
        assert outcome.errors == 1
        assert outcome.results[2] is None
        assert outcome.operations == 5
        report = session.report()
        assert report.operations == 5
        assert report.errors == 1
        assert report.simulated_seconds > 0.0
        assert report.wall_seconds > 0.0
        assert report.replans == 0

    def test_batch_sizes_recorded_per_call_and_in_report(self):
        db = small_db()
        ops = [PointQuery(key=int(k)) for k in range(0, 140, 2)]
        with db.session(execution=VectorizedPolicy(batch_size=32)) as session:
            outcome = session.execute(ops)
        assert outcome.batch_sizes == [32, 32, 6]
        assert session.report().batch_sizes == [32, 32, 6]

    def test_adaptive_session_equals_serial_session(self):
        ops = [PointQuery(key=int(k)) for k in range(0, 512, 2)]
        db_a, db_b = small_db(), small_db()
        outcome_a = db_a.session(execution=SerialPolicy()).execute(ops)
        outcome_b = db_b.session(
            execution=AdaptivePolicy(initial_batch_size=16)
        ).execute(ops)
        assert outcome_a.results == outcome_b.results
        assert (
            db_a.engine.counter.snapshot() == db_b.engine.counter.snapshot()
        )

    def test_session_dispatches_multi_update(self):
        db = small_db()
        with db.session() as session:
            outcome = session.execute(
                MultiUpdate(pairs=((10, 11), (99_999, 5)))
            )
        assert list(outcome.results[0]) == [1, 0]


class TestHarnessFacade:
    def config(self):
        return HAPConfig(
            num_rows=4_096, chunk_size=1_024, block_values=256, payload_columns=3
        )

    def test_build_hap_database_casper(self):
        config = self.config()
        training = make_workload(
            "hybrid_skewed", config, num_operations=400, seed=7
        )
        db = build_hap_database(
            LayoutKind.CASPER, config, training_workload=training
        )
        assert db.planner is not None
        assert db.num_chunks == 4

    def test_run_workload_accepts_database_and_auto_batching(self):
        config = self.config()
        db = build_hap_database(LayoutKind.EQUI, config)
        workload = make_workload(
            "read_only_uniform", config, num_operations=600, seed=3
        )
        result = run_workload(db, workload, batch_size="auto")
        assert result.operations == 600
        assert sum(result.batch_sizes) == 600
        assert len(result.batch_sizes) >= 2
        fixed = run_workload(db, workload, batch_size=100)
        assert fixed.batch_sizes == [100] * 6
        sequential = run_workload(db, workload)
        assert sequential.batch_sizes == []
        with pytest.raises(ValueError):
            run_workload(db, workload, batch_size="fastest")
