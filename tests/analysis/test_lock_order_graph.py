"""Property tests for the runtime lock-order graph and the sanctioned
ascending multi-latch path.

The hypothesis test feeds random per-thread nested acquisition sequences
into ``LockOrderGraph`` and checks its incremental cycle detection against
a brute-force DFS over the accumulated edge set.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import discipline
from repro.discipline import LockOrderGraph
from repro.storage.latches import ChunkLatches, DebugChunkLatches

pytestmark = pytest.mark.concurrency


# --------------------------------------------------------------------------
# LockOrderGraph vs brute force
# --------------------------------------------------------------------------

def brute_force_has_cycle(edges: set[tuple[str, str]]) -> bool:
    graph: dict[str, set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(graph, WHITE)

    def dfs(node: str) -> bool:
        color[node] = GREY
        for nxt in graph.get(node, ()):
            state = color.get(nxt, WHITE)
            if state == GREY:
                return True
            if state == WHITE and dfs(nxt):
                return True
        color[node] = BLACK
        return False

    return any(dfs(n) for n in graph if color[n] == WHITE)


# Each inner list is one thread's nested acquisition order over a small
# lock-id space; prefixes of it become (held, acquired) graph edges.
sequences = st.lists(
    st.lists(
        st.sampled_from(["a", "b", "c", "d", "e"]),
        min_size=1,
        max_size=5,
        unique=True,
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=200, deadline=None)
@given(sequences)
def test_cycle_detection_matches_brute_force(seqs):
    graph = LockOrderGraph()
    for seq in seqs:
        for i, lock in enumerate(seq):
            graph.note(seq[:i], lock, stack="")
    assert graph.has_cycles() == brute_force_has_cycle(graph.edges())


@settings(max_examples=100, deadline=None)
@given(sequences)
def test_reported_cycles_are_real_paths(seqs):
    """has_cycles() flips exactly when a cycle is reported, and every
    reported cycle is a genuine closed path through recorded edges."""
    graph = LockOrderGraph()
    reported = []
    for seq in seqs:
        for i, lock in enumerate(seq):
            reported.extend(graph.note(seq[:i], lock, stack=""))
    assert bool(reported) == graph.has_cycles()
    edges = set(graph.edges())
    for deadlock in reported:
        assert deadlock.edge in edges
        path = deadlock.cycle
        assert path[0] == path[-1] and len(path) >= 3
        for src, dst in zip(path, path[1:], strict=False):
            assert (src, dst) in edges


def test_simple_inversion_reports_cycle():
    graph = LockOrderGraph()
    assert graph.note(["a"], "b", stack="t1") == []
    cycles = graph.note(["b"], "a", stack="t2")
    assert len(cycles) == 1
    assert graph.has_cycles()
    (deadlock,) = cycles
    assert deadlock.edge == ("b", "a")
    assert deadlock.cycle == ["a", "b", "a"]
    assert deadlock.stack == "t2"
    assert deadlock.reverse_stack == "t1"


# --------------------------------------------------------------------------
# ChunkLatches multi-acquire discipline (runtime)
# --------------------------------------------------------------------------

@pytest.fixture
def debug_latches():
    discipline.clear_violations()
    latches = ChunkLatches(6, debug=True)
    assert isinstance(latches, DebugChunkLatches)
    yield latches
    discipline.clear_violations()


def recorded_checks():
    return [v.check for v in discipline.violations()]


def test_acquire_write_many_unsorted_input_is_clean(debug_latches):
    acquired = debug_latches.acquire_write_many([3, 1, 2])
    assert acquired == [1, 2, 3]
    debug_latches.release_write_many(acquired)
    assert recorded_checks() == []


def test_manual_descending_acquire_records_lo02(debug_latches):
    debug_latches.acquire_write(3)
    debug_latches.acquire_write(1)
    debug_latches.release_write(1)
    debug_latches.release_write(3)
    assert "LO02" in recorded_checks()


def test_reacquire_of_held_latch_records_lo02(debug_latches):
    # The latches are not reentrant: re-acquiring a held index is flagged
    # (for a read latch the acquire itself still succeeds, so the probe
    # can unwind cleanly; a write re-acquire would self-deadlock).
    debug_latches.acquire_read(2)
    debug_latches.acquire_read(2)
    debug_latches.release_read(2)
    debug_latches.release_read(2)
    assert "LO02" in recorded_checks()


def test_manual_ascending_acquire_is_clean(debug_latches):
    # Ascending manual nesting is the same order acquire_write_many uses,
    # so it is runtime-legal (the static LO02 check is stricter).
    debug_latches.acquire_write(1)
    debug_latches.acquire_write(3)
    debug_latches.release_write(3)
    debug_latches.release_write(1)
    assert recorded_checks() == []


def test_single_bracketed_acquires_are_clean(debug_latches):
    with debug_latches.shared(2):
        pass
    with debug_latches.exclusive(4):
        pass
    debug_latches.acquire_read(0)
    debug_latches.release_read(0)
    assert recorded_checks() == []
