"""Every repro-lint checker family fires on its fixture violations, stays
quiet on the clean variants, and catches the real bugs PR 6 fixed."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.cli import (
    analyze_paths,
    analyze_source,
    collect_registry,
    merge_registry,
)
from repro.discipline import CHUNK_METHOD_MODES

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"


@pytest.fixture(scope="module")
def fixture_violations():
    return analyze_paths([str(FIXTURES)])


def findings(violations, check, filename):
    return [
        v
        for v in violations
        if v.check == check and v.path.endswith(filename)
    ]


class TestFixtureViolations:
    def test_lb01_insufficient_mode_fires(self, fixture_violations):
        found = findings(fixture_violations, "LB01", "broken_latch.py")
        assert any("point_query" in v.message for v in found)
        assert any(
            "insert" in v.message and "chunk:shared" in v.message
            for v in found
        ), "shared-held exclusive-required call must flag the held mode"

    def test_lb02_raw_chunk_access_fires(self, fixture_violations):
        found = findings(fixture_violations, "LB02", "broken_latch.py")
        assert any(v.function.endswith("unlatched_subscript") for v in found)
        assert any(v.function.endswith("unlatched_store") for v in found)

    def test_lb03_leaked_latch_fires(self, fixture_violations):
        found = findings(fixture_violations, "LB03", "broken_latch.py")
        assert len(found) == 1
        assert found[0].function.endswith("leaky_acquire")

    def test_lo01_order_inversion_fires(self, fixture_violations):
        found = findings(fixture_violations, "LO01", "broken_order.py")
        assert any("reorg_wake" in v.message for v in found)
        assert any("chunk latch" in v.message for v in found)

    def test_lo02_nested_chunk_latch_fires(self, fixture_violations):
        found = findings(fixture_violations, "LO02", "broken_order.py")
        assert len(found) == 1
        assert found[0].function.endswith("descending_chunks")

    def test_gs01_guarded_writes_fire(self, fixture_violations):
        found = findings(fixture_violations, "GS01", "broken_guarded.py")
        flagged = {v.function.split(".")[-1] for v in found}
        assert flagged == {
            "bump_unlocked",
            "mutate_queue_unlocked",
            "store_failures_unlocked",
        }

    def test_gs02_guarded_reads_fire(self, fixture_violations):
        found = findings(fixture_violations, "GS02", "broken_guarded.py")
        flagged = {v.function.split(".")[-1] for v in found}
        assert flagged == {"read_queue_unlocked", "peek_activity"}

    def test_sl01_solver_under_lock_fires(self, fixture_violations):
        found = findings(fixture_violations, "SL01", "broken_solver.py")
        assert any("plan_chunk" in v.message for v in found)
        assert any("rebuild_chunk" in v.message for v in found)

    def test_gc01_blind_publish_fires(self, fixture_violations):
        found = findings(fixture_violations, "GC01", "broken_solver.py")
        assert len(found) == 1
        assert found[0].function.endswith("blind_publish")

    def test_gs01_shard_registries_fire(self, fixture_violations):
        found = findings(fixture_violations, "GS01", "broken_shard.py")
        flagged = {v.function.split(".")[-1] for v in found}
        assert flagged == {
            "swap_socket_unlocked",
            "drop_channel_unlocked",
            "forget_process_unlocked",
        }

    def test_gs02_shard_socket_and_channel_reads_fire(
        self, fixture_violations
    ):
        found = findings(fixture_violations, "GS02", "broken_shard.py")
        flagged = {v.function.split(".")[-1] for v in found}
        assert flagged == {"read_socket_unlocked", "peek_channel_unlocked"}

    def test_lo01_cluster_lock_under_channel_lock_fires(
        self, fixture_violations
    ):
        found = findings(fixture_violations, "LO01", "broken_shard.py")
        assert len(found) == 1
        assert found[0].function.endswith("cluster_lock_under_frame_lock")
        assert "shard_state" in found[0].message
        assert "shard_channel" in found[0].message

    def test_clean_variants_stay_clean(self, fixture_violations):
        clean = (
            "properly_bracketed",
            "properly_scoped",
            "sanctioned_many",
            "guarded_properly",
            "peek_activity_locked",
            "checked_publish",
            "request_properly",
            "dispatch_properly",
        )
        for v in fixture_violations:
            assert not v.function.endswith(clean), v


def _analyze_snippet(source: str, path: str = "snippet.py"):
    tree = ast.parse(source)
    registry, class_registry = merge_registry([collect_registry(tree)])
    return analyze_source(path, source, tree, registry, class_registry)


class TestRegressions:
    """The real violations this PR fixed must stay detectable: each test
    analyzes the pre-fix code shape and asserts the finding."""

    def test_prefix_rebuild_chunk_unlatched_read(self):
        # Table.rebuild_chunk used to return self._chunks[i] unlatched on
        # the empty-snapshot path (now bracketed with a shared scope).
        source = (
            "class Table:\n"
            "    def rebuild_chunk(self, chunk_index):\n"
            "        while True:\n"
            "            snapshot = self.snapshot_chunk(chunk_index)\n"
            "            if snapshot.values.size == 0:\n"
            "                return self._chunks[chunk_index]\n"
            "            rebuilt = self.build_chunk_replacement(snapshot)\n"
            "            if self.publish_chunk(snapshot, rebuilt):\n"
            "                return rebuilt\n"
        )
        assert [v.check for v in _analyze_snippet(source)] == ["LB02"]

    def test_prefix_attach_unguarded_writes(self):
        # Reorganizer.attach used to publish _database with no lock and
        # flip _stop under the wrong lock (now both under their guards).
        source = (
            "class Reorganizer:\n"
            "    def attach(self, database):\n"
            "        self.policy.bind(database)\n"
            "        self._database = database\n"
            "        if self.background:\n"
            "            with self._state:\n"
            "                if self._thread is None:\n"
            "                    self._stop = False\n"
        )
        found = _analyze_snippet(source)
        assert sorted(v.check for v in found) == ["GS01", "GS01"]
        messages = " ".join(v.message for v in found)
        assert "_database" in messages and "_stop" in messages

    def test_fixed_shapes_are_clean(self):
        source = (
            "class Reorganizer:\n"
            "    def attach(self, database):\n"
            "        self.policy.bind(database)\n"
            "        with self._state:\n"
            "            self._database = database\n"
            "            if self.background and self._thread is None:\n"
            "                with self._wake:\n"
            "                    self._stop = False\n"
        )
        assert _analyze_snippet(source) == []


class TestSuppression:
    def test_ignore_comment_silences_named_check(self):
        source = (
            "class Table:\n"
            "    def peek(self, i):\n"
            "        return self._chunks[i]  # repro-lint: ignore[LB02]\n"
        )
        assert _analyze_snippet(source) == []

    def test_ignore_comment_is_check_specific(self):
        source = (
            "class Table:\n"
            "    def peek(self, i):\n"
            "        return self._chunks[i]  # repro-lint: ignore[GS01]\n"
        )
        assert [v.check for v in _analyze_snippet(source)] == ["LB02"]


class TestRegistryConsistency:
    def test_decorators_match_declaration_table(self):
        """The ``@requires_latch`` decorators on the chunk column classes
        must agree with ``repro.discipline.CHUNK_METHOD_MODES`` -- the
        static analyzer's seed registry."""
        decorated: dict[str, str] = {}
        for name in ("column.py", "delta_store.py"):
            path = SRC / "repro" / "storage" / name
            tree = ast.parse(path.read_text())
            for methods in collect_registry(tree).values():
                for method, mode in methods.items():
                    assert decorated.get(method, mode) == mode, method
                    decorated[method] = mode
        assert decorated == CHUNK_METHOD_MODES
