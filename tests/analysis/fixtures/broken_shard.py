"""Sharding-layer discipline violations (GS01 / GS02 / LO01).

The class names deliberately match ``repro.discipline.GUARDED_BY`` keys
(``ShardChannel`` / ``ShardCluster``), so these fixtures exercise the
same declarations the real dispatcher classes are checked against: the
channel's socket is ``shard_channel``-guarded, the cluster's
process/channel registries are ``shard_state``-guarded, and
``shard_state`` ranks *before* ``shard_channel`` in the declared order.
"""


class ShardChannel:
    def read_socket_unlocked(self):
        # GS02: ``_sock`` is rw-guarded by shard_channel -- an unlocked
        # read can race the close() that swaps it to None.
        return self._sock

    def swap_socket_unlocked(self, sock):
        # GS01: writes need the frame lock too.
        self._sock = sock

    def cluster_lock_under_frame_lock(self):
        # LO01: the cluster lock (shard_state) ranks before the channel
        # frame lock -- acquiring it while a frame is in flight inverts
        # the declared order.
        with self._lock:
            with self._shard_state_lock:
                return self._closed

    def request_properly(self, frame):
        # Clean: the socket read is under the frame lock.
        with self._lock:
            return self._sock


class ShardCluster:
    def drop_channel_unlocked(self, shard):
        # GS01: container mutation of the shard_state-guarded registry.
        self._channels.pop(shard)

    def forget_process_unlocked(self, shard):
        # GS01: subscript store into the process registry.
        self._processes[shard] = None

    def peek_channel_unlocked(self, shard):
        # GS02: the registries are rw-guarded -- dispatch-round reads
        # hold the cluster lock.
        return self._channels.get(shard)

    def dispatch_properly(self, shard):
        # Clean: registry read under shard_state, then the borrowed
        # channel lock in declared order (state before channel).
        with self._lock:
            channel = self._channels[shard]
        with self._shard_channel_lock:
            return channel
