"""Latch-bracketing violations (LB01 / LB02 / LB03)."""


class BrokenTable:
    def unlatched_probe(self, chunk_index, key):
        # LB01 (and the raw access it rides on): point_query requires a
        # shared latch, none is held.
        return self._chunks[chunk_index].point_query(key)

    def unlatched_subscript(self, chunk_index):
        # LB02: raw _chunks[...] load outside any latch bracket.
        chunk = self._chunks[chunk_index]
        return chunk.size

    def unlatched_store(self, chunk_index, rebuilt):
        # LB02: _chunks[...] store requires an exclusive latch.
        self._chunks[chunk_index] = rebuilt

    def shared_for_write(self, chunk_index, key):
        # LB01: insert requires an exclusive latch; only shared is held.
        self._latches.acquire_read(chunk_index)
        try:
            self._chunks[chunk_index].insert(key)
        finally:
            self._latches.release_read(chunk_index)

    def leaky_acquire(self, chunk_index, key):
        # LB03: the exclusive latch is never released on this path.
        self._latches.acquire_write(chunk_index)
        self._chunks[chunk_index].delete(key)
        return True

    def properly_bracketed(self, chunk_index, key):
        # Clean: no finding expected here.
        self._latches.acquire_read(chunk_index)
        try:
            return self._chunks[chunk_index].point_query(key)
        finally:
            self._latches.release_read(chunk_index)

    def properly_scoped(self, chunk_index, rebuilt):
        # Clean: with-scope bracketing.
        with self._latches.exclusive(chunk_index):
            self._chunks[chunk_index] = rebuilt
