"""Solver-under-lock and generation-check violations (SL01 / GC01)."""


class BrokenPolicy:
    def solve_under_latch(self, table, chunk_index, values):
        # SL01: the solver runs while a chunk latch is held -- the
        # expensive phase must price against a pinned snapshot off-latch.
        table._latches.acquire_read(chunk_index)
        try:
            return self.planner.plan_chunk(values)
        finally:
            table._latches.release_read(chunk_index)

    def rebuild_under_lock(self, table, chunk_index):
        # SL01: a heavy rebuild entry point under a declared lock.
        with self._state_lock:
            return table.rebuild_chunk(chunk_index)

    def blind_publish(self, table, snapshot, rebuilt):
        # GC01: the publish result is discarded and nothing compared
        # generations first -- a stale replan would land silently.
        table.publish_chunk(snapshot, rebuilt)

    def checked_publish(self, table, snapshot, rebuilt):
        # Clean: the result gates the retry.
        if not table.publish_chunk(snapshot, rebuilt):
            self.requeue(snapshot.chunk_index)
