"""Guarded-state violations (GS01 / GS02).

The class names deliberately match ``repro.discipline.GUARDED_BY`` keys:
the declaration table is class-name keyed, so these fixtures exercise the
same specs the real classes are checked against.
"""


class Reorganizer:
    def bump_unlocked(self):
        # GS01: ``requeues`` is guarded by reorg_state.
        self.requeues += 1

    def mutate_queue_unlocked(self, chunk_index):
        # GS01: container mutation of a reorg_wake-guarded deque.
        self._pending.append(chunk_index)

    def read_queue_unlocked(self):
        # GS02: ``_pending`` is rw-guarded -- reads need the lock too.
        return len(self._pending)

    def store_failures_unlocked(self, chunk_index, count):
        # GS01: subscript store into a reorg_state-guarded dict.
        self._failures[chunk_index] = count

    def guarded_properly(self):
        # Clean: both accesses under their declared locks.
        with self._state:
            self.requeues += 1
        with self._wake:
            return len(self._pending)


class WorkloadMonitor:
    def peek_activity(self, chunk_index):
        # GS02: the activity map is rw-guarded by the monitor lock.
        return self._activity.get(chunk_index)

    def peek_activity_locked(self, chunk_index):
        # Clean.
        with self._lock:
            return self._activity.get(chunk_index)
