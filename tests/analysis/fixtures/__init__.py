"""Deliberately-broken fixture modules proving each repro-lint checker
fires.  These files are *never* imported at runtime -- the analyzer parses
them as text -- and are excluded from the CI lint run (which targets
``src/`` only)."""
