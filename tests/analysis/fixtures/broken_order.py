"""Lock-ordering violations (LO01 / LO02)."""


class Reorganizer:
    def inverted_locks(self):
        # LO01: reorg_wake (rank 70) is held while acquiring reorg_state
        # (rank 60) -- the declared order runs state before wake.
        with self._wake:
            with self._state:
                self.errors += 1

    def latch_under_lock(self, chunk_index):
        # LO01: a chunk latch (rank 0, outermost) acquired under a
        # declared lock.
        with self._state:
            with self._latches.shared(chunk_index):
                return self._chunks[chunk_index]


class BrokenNesting:
    def descending_chunks(self, chunk_index, key):
        # LO02: nested single-latch acquisition (and descending, to boot);
        # multi-chunk latching must use acquire_write_many.
        self._latches.acquire_write(chunk_index)
        try:
            self._latches.acquire_write(chunk_index - 1)
            try:
                self._chunks[chunk_index - 1].insert(key)
            finally:
                self._latches.release_write(chunk_index - 1)
        finally:
            self._latches.release_write(chunk_index)

    def sanctioned_many(self, chunk_indices, key):
        # Clean: acquire_write_many is the sanctioned ascending path.
        acquired = self._latches.acquire_write_many(chunk_indices)
        try:
            for chunk_index in acquired:
                self._chunks[chunk_index].insert(key)
        finally:
            self._latches.release_write_many(acquired)
