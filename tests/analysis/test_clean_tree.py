"""The shipped source tree is discipline-clean: the analyzer reports no
violations, and the CLI (the exact command CI runs) exits 0."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze_paths

REPO = Path(__file__).parents[2]


def test_src_tree_is_clean(tmp_path):
    violations = analyze_paths(
        [str(REPO / "src")], cache_path=tmp_path / "cache.pickle"
    )
    assert violations == [], "\n".join(
        f"{v.path}:{v.line}: {v.check} {v.message}" for v in violations
    )


def test_cli_exits_zero_on_src(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "src",
            "--cache-path",
            str(tmp_path / "cache.pickle"),
        ],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 violations" in result.stdout


def test_cli_exits_nonzero_on_fixtures(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "tests/analysis/fixtures",
            "--no-cache",
        ],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1
    for check in ("LB01", "LB02", "LB03", "LO01", "LO02",
                  "GS01", "GS02", "SL01", "GC01"):
        assert check in result.stdout, f"{check} missing from CLI report"


def test_warm_cache_reanalysis_matches(tmp_path):
    cache = tmp_path / "cache.pickle"
    cold = analyze_paths([str(REPO / "src")], cache_path=cache)
    assert cache.exists()
    warm = analyze_paths([str(REPO / "src")], cache_path=cache)
    assert warm == cold
