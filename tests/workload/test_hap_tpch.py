"""Tests for the HAP benchmark and the TPC-H-like generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import layout_chunk_builder
from repro.workload.hap import (
    HAPConfig,
    NARROW_PAYLOAD_COLUMNS,
    WIDE_PAYLOAD_COLUMNS,
    WORKLOAD_PROFILES,
    build_table,
    figure12_profiles,
    generate_keys,
    generate_payload,
    make_workload,
    narrow_config,
    wide_config,
)
from repro.workload.operations import Insert, OperationKind, PointQuery, RangeQuery
from repro.workload.tpch import (
    Q6_RANGE_DAYS,
    SHIPDATE_DAYS,
    TPCHConfig,
    build_lineitem_table,
    figure1_workload,
    generate_lineitem,
    q6_range,
)


@pytest.fixture
def hap_config():
    return HAPConfig(num_rows=4_096, chunk_size=4_096, block_values=64)


class TestHAP:
    def test_keys_are_even_and_dense(self, hap_config):
        keys = generate_keys(hap_config)
        assert keys.shape[0] == hap_config.num_rows
        assert np.all(keys % 2 == 0)
        assert keys[-1] == hap_config.key_domain[1]

    def test_payload_shape(self, hap_config):
        payload = generate_payload(hap_config)
        assert payload.shape == (hap_config.num_rows, hap_config.payload_columns)

    def test_narrow_and_wide_configs(self):
        assert narrow_config(num_rows=10).payload_columns == NARROW_PAYLOAD_COLUMNS
        assert wide_config(num_rows=10).payload_columns == WIDE_PAYLOAD_COLUMNS

    def test_build_table(self, hap_config):
        spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=8, block_values=64)
        table = build_table(hap_config, layout_chunk_builder(spec))
        assert table.num_rows == hap_config.num_rows
        assert len(table.payload_names) == hap_config.payload_columns

    def test_make_workload_known_profiles(self, hap_config):
        for profile in WORKLOAD_PROFILES:
            workload = make_workload(profile, hap_config, num_operations=50)
            assert len(workload) == 50

    def test_make_workload_unknown_profile(self, hap_config):
        with pytest.raises(KeyError):
            make_workload("nope", hap_config)

    def test_figure12_profiles_cover_six_workloads(self):
        assert len(figure12_profiles()) == 6

    def test_workload_runs_against_table(self, hap_config):
        spec = LayoutSpec(kind=LayoutKind.EQUI_GV, partitions=8, block_values=64)
        table = build_table(hap_config, layout_chunk_builder(spec))
        from repro.storage.engine import StorageEngine

        engine = StorageEngine(table)
        workload = make_workload("hybrid_skewed", hap_config, num_operations=100)
        for operation in workload:
            engine.execute(operation)
        table.check_invariants()

    def test_update_only_profile_has_no_reads(self, hap_config):
        workload = make_workload("update_only_uniform", hap_config, num_operations=200)
        mix = workload.mix()
        assert OperationKind.POINT_QUERY not in mix
        assert mix[OperationKind.INSERT] > 0.7


class TestTPCH:
    def test_lineitem_shape(self):
        config = TPCHConfig(num_rows=8_192)
        keys, payload = generate_lineitem(config)
        assert keys.shape[0] == 8_192
        assert payload.shape == (8_192, 4)
        assert np.all(np.diff(keys) >= 0)
        assert np.all(keys % 2 == 0)

    def test_revenue_derived_from_price_and_discount(self):
        config = TPCHConfig(num_rows=1_024)
        _, payload = generate_lineitem(config)
        quantity, discount, price, revenue = payload.T
        assert np.all(revenue == price * discount // 100)
        assert quantity.min() >= 1 and quantity.max() <= 50
        assert discount.min() >= 0 and discount.max() <= 10

    def test_q6_range_spans_one_year(self):
        config = TPCHConfig(num_rows=8_192)
        low, high = q6_range(config, year_start_day=365)
        keys, _ = generate_lineitem(config)
        selectivity = ((keys >= low) & (keys <= high)).mean()
        assert Q6_RANGE_DAYS / SHIPDATE_DAYS * 0.5 < selectivity < Q6_RANGE_DAYS / SHIPDATE_DAYS * 2

    def test_figure1_workload_mix(self):
        config = TPCHConfig(num_rows=4_096)
        workload = figure1_workload(config, num_operations=600)
        mix = workload.mix()
        assert mix[OperationKind.POINT_QUERY] == pytest.approx(0.45, abs=0.07)
        assert mix[OperationKind.RANGE_QUERY] == pytest.approx(0.10, abs=0.05)
        assert mix[OperationKind.INSERT] == pytest.approx(0.45, abs=0.07)

    def test_figure1_inserts_are_unique(self):
        config = TPCHConfig(num_rows=2_048)
        workload = figure1_workload(config, num_operations=300)
        inserts = [op.key for op in workload if isinstance(op, Insert)]
        assert len(set(inserts)) == len(inserts)

    def test_lineitem_table_executes_q6(self):
        config = TPCHConfig(num_rows=4_096, chunk_size=4_096, block_values=64)
        spec = LayoutSpec(kind=LayoutKind.SORTED, block_values=64)
        table = build_lineitem_table(config, layout_chunk_builder(spec))
        low, high = q6_range(config, year_start_day=100)
        total = table.range_sum(low, high, columns=["l_revenue"])
        assert total > 0
