"""Tests for workload operations, distributions and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.distributions import (
    EarlySkewSampler,
    HotspotSampler,
    RecentSkewSampler,
    ShiftedSampler,
    UniformSampler,
    ZipfSampler,
    histogram_of,
)
from repro.workload.generator import (
    FIGURE12_MIXES,
    HYBRID_SKEWED,
    UPDATE_ONLY_UNIFORM,
    WorkloadGenerator,
    WorkloadMix,
)
from repro.workload.operations import (
    Aggregate,
    Delete,
    Insert,
    OperationKind,
    PointQuery,
    RangeQuery,
    Update,
    Workload,
)


class TestOperations:
    def test_range_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(low=10, high=5)

    def test_workload_counts_and_mix(self):
        workload = Workload(
            operations=[PointQuery(key=1), PointQuery(key=2), Insert(key=3), Delete(key=1)]
        )
        counts = workload.counts_by_kind()
        assert counts[OperationKind.POINT_QUERY] == 2
        assert counts[OperationKind.INSERT] == 1
        mix = workload.mix()
        assert mix[OperationKind.POINT_QUERY] == pytest.approx(0.5)

    def test_workload_subset(self):
        workload = Workload(operations=[PointQuery(key=1), Insert(key=3)])
        subset = workload.subset([OperationKind.INSERT])
        assert len(subset) == 1
        assert isinstance(subset.operations[0], Insert)

    def test_workload_append_extend_iter(self):
        workload = Workload()
        workload.append(PointQuery(key=1))
        workload.extend([Insert(key=2), Update(old_key=1, new_key=3)])
        assert len(list(workload)) == 3

    def test_empty_mix(self):
        assert Workload().mix() == {}


class TestDistributions:
    @pytest.mark.parametrize(
        "sampler",
        [
            UniformSampler(),
            RecentSkewSampler(),
            EarlySkewSampler(),
            ZipfSampler(),
            HotspotSampler(),
            ShiftedSampler(base=UniformSampler(), shift=0.3),
        ],
    )
    def test_samples_within_domain(self, sampler, rng):
        keys = sampler.sample(rng, 1_000, 10, 500)
        assert keys.min() >= 10
        assert keys.max() <= 500

    def test_invalid_domain(self, rng):
        with pytest.raises(ValueError):
            UniformSampler().sample(rng, 10, 5, 1)

    def test_recent_skew_concentrates_at_end(self, rng):
        unit = RecentSkewSampler(exponent=4.0).sample_unit(rng, 20_000)
        assert unit.mean() > 0.7

    def test_early_skew_concentrates_at_start(self, rng):
        unit = EarlySkewSampler(exponent=4.0).sample_unit(rng, 20_000)
        assert unit.mean() < 0.3

    def test_hotspot_mass_in_hot_region(self, rng):
        sampler = HotspotSampler(hot_fraction=0.1, hot_probability=0.9)
        unit = sampler.sample_unit(rng, 20_000)
        assert (unit <= 0.1).mean() > 0.8

    def test_zipf_skews_toward_low_buckets(self, rng):
        unit = ZipfSampler(theta=1.2, buckets=64).sample_unit(rng, 20_000)
        assert (unit <= 1 / 64).mean() > 0.2

    def test_shifted_sampler_rotates(self, rng):
        base = EarlySkewSampler(exponent=6.0)
        shifted = ShiftedSampler(base=base, shift=0.5)
        assert shifted.sample_unit(rng, 10_000).mean() > 0.4

    def test_histogram_of_shape_and_mass(self):
        hist = histogram_of(UniformSampler(), bins=32, samples=10_000)
        assert hist.shape == (32,)
        assert hist.sum() == 10_000


class TestWorkloadMix:
    def test_fractions_normalized(self):
        mix = WorkloadMix(name="m", q1_point=1.0, q4_insert=3.0)
        fractions = mix.fractions()
        assert fractions["q1"] == pytest.approx(0.25)
        assert fractions["q4"] == pytest.approx(0.75)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix(name="empty").fractions()

    def test_figure12_mixes_have_expected_shapes(self):
        assert len(FIGURE12_MIXES) == 6
        assert HYBRID_SKEWED.q4_insert == pytest.approx(0.50)
        assert UPDATE_ONLY_UNIFORM.q5_delete == pytest.approx(0.19)


class TestWorkloadGenerator:
    def make_generator(self, seed=1):
        keys = np.arange(0, 20_000, 2)
        return WorkloadGenerator(keys, seed=seed), keys

    def test_generates_requested_count_and_mix(self):
        generator, _ = self.make_generator()
        workload = generator.generate(HYBRID_SKEWED, 1_000)
        assert len(workload) == 1_000
        mix = workload.mix()
        assert mix[OperationKind.POINT_QUERY] == pytest.approx(0.49, abs=0.05)
        assert mix[OperationKind.INSERT] == pytest.approx(0.50, abs=0.05)

    def test_inserts_use_fresh_odd_keys(self):
        generator, keys = self.make_generator()
        workload = generator.generate(
            WorkloadMix(name="ins", q4_insert=1.0), 500
        )
        inserted = [op.key for op in workload]
        assert all(key % 2 == 1 for key in inserted)
        assert len(set(inserted)) == len(inserted)

    def test_deletes_target_existing_keys_once(self):
        generator, keys = self.make_generator()
        workload = generator.generate(
            WorkloadMix(name="del", q5_delete=1.0), 300
        )
        deleted = [op.key for op in workload]
        assert all(key in set(keys.tolist()) for key in deleted)
        assert len(set(deleted)) == len(deleted)

    def test_updates_reference_existing_then_fresh(self):
        generator, keys = self.make_generator()
        workload = generator.generate(WorkloadMix(name="upd", q6_update=1.0), 200)
        key_set = set(keys.tolist())
        for op in workload:
            assert op.old_key in key_set
            assert op.new_key % 2 == 1

    def test_range_queries_respect_selectivity(self):
        generator, keys = self.make_generator()
        mix = WorkloadMix(name="rq", q2_range_count=1.0, range_selectivity=0.01)
        workload = generator.generate(mix, 100)
        span = int(keys[-1]) - int(keys[0])
        for op in workload:
            assert op.aggregate is Aggregate.COUNT
            assert (op.high - op.low) <= span * 0.011

    def test_reproducible_with_seed(self):
        first, _ = self.make_generator(seed=9)
        second, _ = self.make_generator(seed=9)
        a = first.generate(HYBRID_SKEWED, 100)
        b = second.generate(HYBRID_SKEWED, 100)
        assert a.operations == b.operations

    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(np.empty(0))


class TestGeneratePhases:
    def test_phases_concatenate_and_share_state(self):
        keys = np.arange(512, dtype=np.int64) * 2
        generator = WorkloadGenerator(keys, seed=11)
        phases = generator.generate_phases(
            [
                (WorkloadMix(name="reads", q1_point=1.0), 50),
                (WorkloadMix(name="deletes", q5_delete=1.0), 30),
                (WorkloadMix(name="inserts", q4_insert=1.0), 20),
            ]
        )
        assert len(phases) == 100
        assert "reads" in phases.name and "inserts" in phases.name
        deletes = [op.key for op in phases.operations[50:80]]
        assert len(set(deletes)) == len(deletes)
        inserts = [op.key for op in phases.operations[80:]]
        assert all(key % 2 == 1 for key in inserts)

    def test_phase_name_override(self):
        keys = np.arange(64, dtype=np.int64) * 2
        generator = WorkloadGenerator(keys, seed=1)
        workload = generator.generate_phases(
            [(WorkloadMix(name="reads", q1_point=1.0), 5)], name="drifting"
        )
        assert workload.name == "drifting"
