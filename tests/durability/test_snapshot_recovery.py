"""Snapshot + recovery tests: checkpoints, rotation/GC, oracle equality."""

import threading

import numpy as np
import pytest

from repro.api.database import Database
from repro.api.policies import VectorizedPolicy
from repro.durability.errors import ReadOnlyError, WalUnavailableError
from repro.durability.faults import FaultInjector
from repro.durability.manager import DurabilityConfig
from repro.durability.recovery import recover, replay
from repro.durability.snapshot import list_snapshots, load_snapshot
from repro.durability.wal import scan_segment, segment_first_lsn
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.workload.operations import (
    MultiDelete,
    MultiInsert,
    MultiUpdate,
    PointQuery,
    RangeQuery,
)


def payload_for(keys):
    """Deterministic payload = f(key), so recovery checks are order-free."""
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def make_db(root, rows=200, **kwargs):
    keys = np.arange(rows, dtype=np.int64) * 2
    return Database.from_rows(
        keys,
        payload_for(keys),
        chunk_size=64,
        payload_names=("a", "b"),
        durability=root,
        **kwargs,
    )


def fingerprint(table):
    """Multiset of (key, *payload) rows -- rowid-renumbering agnostic."""
    keys = np.sort(table.scan())
    rows = []
    for key in keys.tolist():
        for row in table.point_query(key):
            rows.append((key, *sorted(row.payload.items())))
    return sorted(rows)


def wal_records(root):
    """Every (lsn, body) record across all segments, in LSN order."""
    segments = sorted(
        (root / "wal").glob("wal-*.log"), key=lambda p: segment_first_lsn(p.name)
    )
    records = []
    for segment in segments:
        records.extend(scan_segment(segment).records)
    return records


class TestBaseline:
    def test_from_rows_takes_baseline_snapshot(self, tmp_path):
        db = make_db(tmp_path)
        snapshots = list_snapshots(tmp_path / "snapshots")
        assert len(snapshots) == 1
        loaded = load_snapshot(snapshots[0])
        assert loaded.keys.size == 200
        assert loaded.meta["payload_names"] == ["a", "b"]
        assert (tmp_path / "wal").exists()
        db.close()

    def test_open_without_writes_matches(self, tmp_path):
        db = make_db(tmp_path)
        before = fingerprint(db.table)
        db.close()
        reopened = Database.open(tmp_path)
        assert reopened.recovery.batches_replayed == 0
        assert fingerprint(reopened.table) == before
        reopened.table.check_invariants()
        reopened.close()


class TestWriteRecover:
    def test_writes_survive_close_and_open(self, tmp_path):
        db = make_db(tmp_path)
        with db.session() as s:
            new = np.arange(601, 641, dtype=np.int64)
            s.execute(MultiInsert(tuple(new.tolist()), tuple(map(tuple, payload_for(new)))))
            s.execute(MultiDelete((0, 2, 4, 6)))
            s.execute(MultiUpdate(((10, 11), (12, 13))))
        before = fingerprint(db.table)
        db.close()

        reopened = Database.open(tmp_path)
        report = reopened.recovery
        assert report.batches_replayed == 3
        assert report.last_lsn > report.base_lsn
        assert fingerprint(reopened.table) == before
        reopened.table.check_invariants()
        # The reopened database accepts further durable writes.
        with reopened.session() as s:
            result = s.execute(MultiInsert((1001, 1003), ((1, 2), (3, 4))))
            assert result.commit_lsn == report.last_lsn + 1
            assert result.durable
            assert s.execute(PointQuery(1001)).results[0]
        reopened.close()

    def test_commit_acknowledgement_reports_lsn(self, tmp_path):
        db = make_db(tmp_path)
        with db.session() as s:
            read = s.execute(RangeQuery(0, 100))
            write = s.execute(MultiInsert((901,), ((0, 0),)))
            assert s.sync() == write.commit_lsn
        # The pure read ran before any write: nothing logged yet.
        assert read.commit_lsn is None
        assert write.commit_lsn == 1
        assert write.durable  # fsync="always"
        db.close()

    def test_checkpoint_shortens_replay(self, tmp_path):
        db = make_db(tmp_path)
        with db.session() as s:
            s.execute(MultiInsert((801, 803), ((0, 0), (1, 1))))
        info = db.checkpoint()
        assert info.lsn == 1
        with db.session() as s:
            s.execute(MultiDelete((801,)))
        db.close()

        reopened = Database.open(tmp_path)
        assert reopened.recovery.base_lsn == info.lsn
        assert reopened.recovery.batches_replayed == 1
        assert reopened.table.point_query(803)
        assert not reopened.table.point_query(801)
        reopened.close()


class TestRotationAndGC:
    def test_checkpoints_rotate_and_collect(self, tmp_path):
        db = make_db(tmp_path)
        wal_dir = tmp_path / "wal"

        def write_round(base):
            with db.session() as s:
                s.execute(MultiInsert((base, base + 2), ((0, 0), (1, 1))))

        write_round(2001)
        db.checkpoint()
        assert len(list_snapshots(tmp_path / "snapshots")) == 2
        write_round(3001)
        db.checkpoint()
        # keep_snapshots=2: the baseline snapshot is gone, and with it the
        # segments its successors fully cover.
        snapshots = list_snapshots(tmp_path / "snapshots")
        assert len(snapshots) == 2
        firsts = sorted(
            segment_first_lsn(p.name) for p in wal_dir.glob("wal-*.log")
        )
        assert firsts[0] > 1  # the first post-baseline segment was collected
        db.close()

        reopened = Database.open(tmp_path)
        assert reopened.table.point_query(2001)
        assert reopened.table.point_query(3003)
        reopened.close()

    def test_layout_spec_survives_recovery(self, tmp_path):
        keys = np.arange(500, dtype=np.int64)
        spec = LayoutSpec(kind=LayoutKind.EQUI, partitions=8)
        db = Database.from_rows(
            keys,
            payload_for(keys),
            layout=spec,
            chunk_size=128,
            payload_names=("a", "b"),
            durability=tmp_path,
        )
        with db.session() as s:
            s.execute(MultiInsert((9001,), ((5, 5),)))
        db.checkpoint()
        db.close()

        reopened = Database.open(tmp_path)
        # The rebuilt chunks use the stored layout spec, not a default.
        snapshots = list_snapshots(tmp_path / "snapshots")
        meta = load_snapshot(snapshots[0]).meta
        assert meta["layout_spec"]["kind"] == "equi"
        assert meta["layout_spec"]["partitions"] == 8
        assert reopened.table.num_rows == 501
        reopened.table.check_invariants()
        # A post-recovery checkpoint preserves the spec for the next open.
        with reopened.session() as s:
            s.execute(MultiInsert((9003,), ((6, 6),)))
        reopened.checkpoint()
        latest = load_snapshot(list_snapshots(tmp_path / "snapshots")[0])
        assert latest.meta["layout_spec"]["partitions"] == 8
        reopened.close()


class TestReplaySemantics:
    def test_replay_is_idempotent_past_watermark(self, tmp_path):
        db = make_db(tmp_path)
        with db.session() as s:
            s.execute(MultiInsert((701, 703), ((0, 0), (1, 1))))
            s.execute(MultiDelete((701,)))
        db.close()

        table, report = recover(tmp_path)
        before = fingerprint(table)
        records = wal_records(tmp_path)
        assert records
        # Replaying the already-applied prefix again is a no-op.
        batches, operations, last = replay(
            table, records, after_lsn=report.last_lsn
        )
        assert batches == 0
        assert operations == 0
        assert last == report.last_lsn
        assert fingerprint(table) == before

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        db = make_db(tmp_path)
        with db.session() as s:
            s.execute(MultiInsert((501,), ((0, 0),)))
        db.checkpoint()
        with db.session() as s:
            s.execute(MultiInsert((503,), ((1, 1),)))
        before = fingerprint(db.table)
        db.close()

        newest = list_snapshots(tmp_path / "snapshots")[0]
        chunk = sorted(newest.glob("chunk-*.npz"))[0]
        data = bytearray(chunk.read_bytes())
        data[len(data) // 2] ^= 0xFF
        chunk.write_bytes(bytes(data))

        reopened = Database.open(tmp_path)
        # Fallback to the baseline snapshot means a longer replay.
        assert reopened.recovery.base_lsn == 0
        assert reopened.recovery.batches_replayed == 2
        assert fingerprint(reopened.table) == before
        reopened.close()


class TestReadOnlyDegradation:
    def test_unwritable_log_degrades_to_read_only(self, tmp_path):
        faults = FaultInjector()
        config = DurabilityConfig(
            root=tmp_path, faults=faults, max_retries=1, retry_backoff_s=0.0
        )
        db = Database.from_rows(
            np.arange(100, dtype=np.int64),
            payload_for(np.arange(100)),
            chunk_size=32,
            payload_names=("a", "b"),
            durability=config,
        )
        with db.session() as s:
            s.execute(MultiInsert((901,), ((0, 0),)))
        # The log directory "becomes unwritable" from here on.
        faults.io_error_at = "wal.write"
        faults.io_errors = 10**9
        with db.session() as s, pytest.raises(WalUnavailableError):
            s.execute(MultiInsert((903,), ((1, 1),)))
        assert db.read_only
        with db.session() as s:
            with pytest.raises(ReadOnlyError):
                s.execute(MultiInsert((905,), ((2, 2),)))
            # Reads keep flowing in the degraded state.
            assert s.execute(RangeQuery(0, 200)).results[0] > 0
            assert s.execute(PointQuery(901)).results[0]
        db.close()

        # Restart sees only the acknowledged prefix: lsn 1 survives, the
        # failed append never made it to the log.
        faults.io_errors = 0
        reopened = Database.open(tmp_path)
        assert reopened.recovery.last_lsn == 1
        assert reopened.table.point_query(901)
        assert not reopened.table.point_query(903)
        reopened.close()


class TestConcurrentDurability:
    @pytest.mark.concurrency
    def test_concurrent_sessions_recover_exactly(
        self, tmp_path, tight_switch_interval
    ):
        db = make_db(tmp_path, rows=100)
        errors = []

        def worker(worker_id):
            try:
                with db.session(
                    execution=VectorizedPolicy(batch_size=32)
                ) as s:
                    for round_no in range(5):
                        base = 10_000 + worker_id * 1_000 + round_no * 100
                        keys = np.arange(base, base + 40, 2, dtype=np.int64)
                        s.execute(
                            MultiInsert(
                                tuple(keys.tolist()),
                                tuple(map(tuple, payload_for(keys))),
                            )
                        )
                        s.execute(RangeQuery(0, 50_000))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        before = fingerprint(db.table)
        db.checkpoint()
        db.close()

        reopened = Database.open(tmp_path)
        assert fingerprint(reopened.table) == before
        reopened.table.check_invariants()
        reopened.close()
