"""WAL unit tests: codec round trips, torn tails, group commit, retries."""

import os
import threading

import numpy as np
import pytest

from repro import discipline
from repro.durability.errors import WalCorruptionError, WalUnavailableError
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.durability.wal import (
    MAGIC,
    WalWriter,
    decode_delta_log,
    encode_delta_log,
    frame_record,
    scan_segment,
    segment_first_lsn,
    segment_name,
)
from repro.storage.access_log import DeltaLog


#: ``WalWriter.append``'s declared precondition is the ``wal_commit``
#: lock; tests acquire a real discipline lock so the debug-mode entry
#: assertion (REPRO_DEBUG_LATCHES=1) holds here too.
COMMIT_LOCK = discipline.make_lock("wal_commit")


def append(writer, lsn, body):
    with COMMIT_LOCK:
        writer.append(lsn, body)


def make_log(width=2):
    log = DeltaLog()
    log.record_insert([3, 1, 4], np.arange(3 * width).reshape(3, width))
    log.record_delete([1, 5, 9])
    log.record_update([(2, 6), (5, 3)])
    return log


def assert_logs_equal(a, b):
    assert len(a.records) == len(b.records)
    for left, right in zip(a.records, b.records, strict=True):
        assert left.kind == right.kind
        np.testing.assert_array_equal(left.keys, right.keys)
        if left.kind == "insert":
            np.testing.assert_array_equal(left.payloads, right.payloads)
        if left.kind == "update":
            np.testing.assert_array_equal(left.new_keys, right.new_keys)


class TestCodec:
    def test_round_trip(self):
        log = make_log()
        assert_logs_equal(decode_delta_log(encode_delta_log(log)), log)

    def test_round_trip_zero_width_payload(self):
        log = DeltaLog()
        log.record_insert([7, 8], np.empty((2, 0), dtype=np.int64))
        decoded = decode_delta_log(encode_delta_log(log))
        assert decoded.records[0].payloads.shape == (2, 0)

    def test_empty_log(self):
        decoded = decode_delta_log(encode_delta_log(DeltaLog()))
        assert len(decoded.records) == 0

    def test_operations_total(self):
        assert make_log().operations == 8

    def test_round_trip_atomic_flag(self):
        log = DeltaLog(atomic=True)
        log.record_insert([1], np.zeros((1, 2), dtype=np.int64))
        decoded = decode_delta_log(encode_delta_log(log))
        assert decoded.atomic
        # The flag rides the count high bit; plain logs stay unflagged.
        assert not decode_delta_log(encode_delta_log(make_log())).atomic

    def test_round_trip_move_markers(self):
        log = DeltaLog()
        log.record_move_intent(7, 3, 41, [10, 11])
        log.record_delete([3])
        log.record_move_commit(7)
        log.record_move_forget(7)
        decoded = decode_delta_log(encode_delta_log(log))
        kinds = [record.kind for record in decoded.records]
        assert kinds == ["move_intent", "delete", "move_commit", "move_forget"]
        intent = decoded.records[0]
        np.testing.assert_array_equal(intent.keys, [7, 3, 41])
        np.testing.assert_array_equal(intent.payloads, [[10, 11]])
        assert decoded.records[2].keys.tolist() == [7]
        assert decoded.records[3].keys.tolist() == [7]
        # Markers are bookkeeping: only the delete counts as an operation.
        assert decoded.operations == 1

    def test_move_intent_zero_width_payload(self):
        log = DeltaLog()
        log.record_move_intent(1, 2, 3, None)
        decoded = decode_delta_log(encode_delta_log(log))
        assert decoded.records[0].payloads.shape == (1, 0)

    def test_truncated_body_rejected(self):
        body = encode_delta_log(make_log())
        with pytest.raises(WalCorruptionError):
            decode_delta_log(body[:-4])

    def test_trailing_bytes_rejected(self):
        body = encode_delta_log(make_log())
        with pytest.raises(WalCorruptionError):
            decode_delta_log(body + b"\x00")


class TestSegmentNames:
    def test_round_trip(self):
        assert segment_first_lsn(segment_name(42)) == 42

    def test_rejects_foreign_names(self):
        with pytest.raises(WalCorruptionError):
            segment_first_lsn("notawal.log")


class TestAppendScan:
    def test_append_then_scan(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = WalWriter(path)
        bodies = [encode_delta_log(make_log(width=w)) for w in (0, 1, 3)]
        for lsn, body in enumerate(bodies, start=1):
            append(writer, lsn, body)
        writer.close()
        scan = scan_segment(path)
        assert not scan.torn
        assert [lsn for lsn, _ in scan.records] == [1, 2, 3]
        assert [body for _, body in scan.records] == bodies

    def test_lsn_must_be_consecutive(self, tmp_path):
        writer = WalWriter(tmp_path / segment_name(1))
        append(writer, 1, b"x")
        with pytest.raises(WalCorruptionError):
            append(writer, 3, b"y")
        writer.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = WalWriter(path)
        append(writer, 1, b"alpha")
        append(writer, 2, b"beta")
        writer.close()
        intact = path.stat().st_size
        # Simulate a crash mid-append: half of record 3's frame.
        frame = frame_record(3, b"gamma-torn")
        with open(path, "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        scan = scan_segment(path)
        assert scan.torn
        assert [lsn for lsn, _ in scan.records] == [1, 2]
        reopened = WalWriter(path)
        assert path.stat().st_size == intact
        assert reopened.appended_lsn == 2
        append(reopened, 3, b"gamma")
        reopened.close()
        assert [lsn for lsn, _ in scan_segment(path).records] == [1, 2, 3]

    def test_corrupt_middle_record_stops_scan(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = WalWriter(path)
        for lsn in (1, 2, 3):
            append(writer, lsn, b"payload-%d" % lsn)
        writer.close()
        data = bytearray(path.read_bytes())
        # Flip one byte inside record 2's body.
        offset = len(MAGIC) + len(frame_record(1, b"payload-1")) + 20
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        scan = scan_segment(path)
        assert scan.torn
        assert [lsn for lsn, _ in scan.records] == [1]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(WalCorruptionError):
            scan_segment(path)

    def test_empty_segment_reopens_at_first_lsn(self, tmp_path):
        path = tmp_path / segment_name(7)
        WalWriter(path).close()
        reopened = WalWriter(path)
        assert reopened.appended_lsn == 6
        append(reopened, 7, b"first")
        reopened.close()
        assert [lsn for lsn, _ in scan_segment(path).records] == [7]


class TestGroupCommit:
    def test_sync_coalesces(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            "repro.durability.wal.os.fsync",
            lambda fd: (calls.append(fd), real_fsync(fd))[1],
        )
        writer = WalWriter(tmp_path / segment_name(1))
        append(writer, 1, b"a")
        append(writer, 2, b"b")
        assert writer.synced_lsn == 0
        assert writer.sync() == 2
        assert len(calls) == 1
        # Nothing new appended: the next sync is a no-op.
        assert writer.sync() == 2
        assert len(calls) == 1
        writer.close()
        assert len(calls) == 1

    def test_concurrent_commit_and_sync(self, tmp_path):
        writer = WalWriter(tmp_path / segment_name(1))
        lock = threading.Lock()
        errors = []

        def committer(worker):
            try:
                for _ in range(25):
                    with lock:
                        append(writer, writer.appended_lsn + 1, b"w%d" % worker)
                    writer.sync()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=committer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert writer.synced_lsn == 100
        writer.close()
        assert len(scan_segment(writer.path).records) == 100


class TestRetriesAndDegradation:
    def test_transient_errors_are_retried(self, tmp_path):
        faults = FaultInjector(io_error_at="wal.write", io_errors=2)
        writer = WalWriter(
            tmp_path / segment_name(1),
            faults=faults,
            max_retries=4,
            sleep=lambda _: None,
        )
        append(writer, 1, b"survives")
        writer.close()
        assert faults.io_errors == 0
        assert len(scan_segment(writer.path).records) == 1

    def test_persistent_errors_shut_the_writer_down(self, tmp_path):
        faults = FaultInjector(io_error_at="wal.write", io_errors=100)
        writer = WalWriter(
            tmp_path / segment_name(1),
            faults=faults,
            max_retries=2,
            sleep=lambda _: None,
        )
        with pytest.raises(WalUnavailableError):
            append(writer, 1, b"never lands")
        assert writer.failed
        with pytest.raises(WalUnavailableError):
            append(writer, 1, b"still down")
        writer.abandon()

    def test_fsync_errors_shut_the_writer_down(self, tmp_path):
        faults = FaultInjector(io_error_at="wal.fsync", io_errors=100)
        writer = WalWriter(
            tmp_path / segment_name(1),
            faults=faults,
            max_retries=1,
            sleep=lambda _: None,
        )
        append(writer, 1, b"appended")
        with pytest.raises(WalUnavailableError):
            writer.sync()
        assert writer.failed
        writer.abandon()


class TestCrashPoints:
    @pytest.mark.parametrize(
        "point,surviving",
        [
            ("wal.append.begin", [1]),
            ("wal.append.header", [1]),
            ("wal.append.partial", [1]),
            ("wal.append.full", [1, 2]),
        ],
    )
    def test_append_crash_leaves_valid_prefix(self, tmp_path, point, surviving):
        path = tmp_path / segment_name(1)
        faults = FaultInjector(crash_at=point, crash_hit=2)
        writer = WalWriter(path, faults=faults)
        append(writer, 1, b"committed")
        with pytest.raises(InjectedCrash):
            append(writer, 2, b"torn away maybe")
        scan = scan_segment(path)
        assert [lsn for lsn, _ in scan.records] == surviving
        # Reopen truncates whatever tail the crash left.
        reopened = WalWriter(path)
        assert reopened.appended_lsn == surviving[-1]
        reopened.close()

    def test_power_loss_drops_unsynced_tail(self, tmp_path):
        path = tmp_path / segment_name(1)
        faults = FaultInjector(
            crash_at="wal.append.full", crash_hit=3, power_loss=True
        )
        writer = WalWriter(path, faults=faults)
        append(writer, 1, b"durable")
        writer.sync()
        append(writer, 2, b"volatile")
        with pytest.raises(InjectedCrash):
            append(writer, 3, b"volatile too")
        # Only the fsynced prefix survives the power cut.
        assert [lsn for lsn, _ in scan_segment(path).records] == [1]

    def test_fsync_crash_before_durability(self, tmp_path):
        path = tmp_path / segment_name(1)
        faults = FaultInjector(crash_at="wal.fsync", power_loss=True)
        writer = WalWriter(path, faults=faults)
        append(writer, 1, b"appended not synced")
        with pytest.raises(InjectedCrash):
            writer.sync()
        assert scan_segment(path).records == []
