"""WAL-logged MVCC transaction commits: atomicity, aborts, crash matrix.

A durable commit publishes the transaction's write set as **one atomic
WAL record** (the ``DeltaLog(atomic=True)`` flag in the count's high
bit), so crash recovery replays every committed transaction whole or not
at all -- never a fragment.  Aborts (explicit or conflict) log nothing.

The harness mirrors ``test_crash_properties``: an oracle model advances
in lockstep with the engine, one transaction per step, a fault injector
crashes at a named I/O point, and the recovered table must equal the
oracle after ``j`` transactions for some ``j`` in ``{acked, applied}``.
Workload keys are unique by construction (initial keys even, generated
keys odd), the regime the oracle-equality contract is stated under.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.database import Database
from repro.durability.faults import CRASH_POINTS, FaultInjector, InjectedCrash
from repro.durability.manager import DurabilityConfig
from repro.durability.wal import decode_delta_log, scan_segment, segment_first_lsn
from repro.storage.errors import TransactionConflictError

TXN_KINDS = ("insert", "delete", "update")

#: A workload spec: transactions of (op kind, choice index).  The index
#: picks delete/update victims from the live keys the transaction has not
#: already written, so intent applies can never raise mid-commit.
TXN_SPECS = st.lists(
    st.lists(
        st.tuples(st.sampled_from(TXN_KINDS), st.integers(0, 99)),
        min_size=1,
        max_size=4,
    ),
    min_size=2,
    max_size=5,
)


def payload_for(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def canonical_model(model):
    return sorted((key, a, b) for key, (a, b) in model.items())


def canonical_table(table):
    out = []
    for key in np.sort(table.scan()).tolist():
        for row in table.point_query(key):
            out.append((key, row.payload["a"], row.payload["b"]))
    return sorted(out)


def wal_records(root):
    """All decoded ``(lsn, DeltaLog)`` records under ``root``."""
    segments = sorted(
        (Path(root) / "wal").glob("wal-*.log"), key=segment_first_lsn
    )
    out = []
    for segment in segments:
        for lsn, body in scan_segment(segment).records:
            out.append((lsn, decode_delta_log(body)))
    return out


def transactional_db(root, *, faults=None):
    config = DurabilityConfig(root=root, faults=faults, retry_backoff_s=0.0)
    initial = np.arange(0, 100, 2, dtype=np.int64)
    db = Database.from_rows(
        initial,
        payload_for(initial),
        chunk_size=32,
        payload_names=("a", "b"),
        durability=config,
        enable_transactions=True,
    )
    model = {
        int(key): tuple(row)
        for key, row in zip(
            initial.tolist(), payload_for(initial).tolist(), strict=True
        )
    }
    return db, model


def build_txn(engine, spec_txn, model, next_key):
    """Buffer one transaction; returns ``(txn, post-commit model)``.

    Keys already written by this transaction are never picked again, so
    every intent apply succeeds -- a commit can only die at an injected
    I/O fault, keeping the atomicity question isolated.
    """
    txn = engine.begin_transaction()
    scratch = dict(model)
    used: set[int] = set()
    for kind, idx in spec_txn:
        if kind == "insert":
            key = next_key[0]
            next_key[0] += 2
            row = payload_for([key]).tolist()[0]
            engine.transactional_insert(txn, key, row)
            scratch[key] = tuple(row)
            used.add(key)
        else:
            live = sorted(k for k in scratch if k not in used)
            if not live:
                continue
            victim = live[idx % len(live)]
            if kind == "delete":
                engine.transactional_delete(txn, victim)
                scratch.pop(victim)
                used.add(victim)
            else:
                new = next_key[0]
                next_key[0] += 2
                engine.transactional_update(txn, victim, new)
                scratch[new] = scratch.pop(victim)
                used.update((victim, new))
    return txn, scratch


def run_txn_crash_scenario(root, spec, crash_point, power_loss, offset):
    """Commit ``spec``'s transactions, crashing at ``crash_point``.

    Returns ``(crashed, recovered, allowed)`` exactly as the batch-based
    harness does: the recovered canonical state must be an oracle prefix
    -- whole transactions only.
    """
    faults = FaultInjector(power_loss=power_loss)
    db, model = transactional_db(root, faults=faults)
    prefixes = [canonical_model(model)]
    next_key = [1_000_001]

    # Arm the injector only now: the baseline snapshot above must land.
    faults.crash_at = crash_point
    faults.crash_hit = faults.hits[crash_point] + offset

    acked = 0
    applied = 0
    crashed = False
    for i, spec_txn in enumerate(spec):
        if i == 1:
            # A mid-run checkpoint makes the snapshot crash points
            # reachable; an injected crash aborts it without rotating.
            try:
                db.checkpoint()
            except InjectedCrash:
                crashed = True
                break
        txn, new_model = build_txn(db.engine, spec_txn, model, next_key)
        try:
            db.engine.commit(txn)
        except InjectedCrash:
            # Intents applied in memory before the WAL append/fsync
            # crashed: the commit's one record landed whole or not at
            # all -- never a fragment.
            crashed = True
            model = new_model
            prefixes.append(canonical_model(model))
            applied = acked + 1
            break
        model = new_model
        prefixes.append(canonical_model(model))
        acked += 1
        applied = acked
    if not crashed:
        db.close()

    recovered_db = Database.open(root)
    try:
        recovered = canonical_table(recovered_db.table)
        recovered_db.table.check_invariants()
    finally:
        recovered_db.close()
    allowed = [prefixes[acked], prefixes[applied]]
    return crashed, recovered, allowed


class TestAtomicCommitRecord:
    def test_commit_publishes_one_atomic_record(self, tmp_path):
        db, model = transactional_db(tmp_path)
        engine = db.engine
        txn = engine.begin_transaction()
        engine.transactional_insert(txn, 1_000_001, (3, 4))
        engine.transactional_delete(txn, 0)
        engine.transactional_update(txn, 2, 1_000_003)
        engine.commit(txn)
        db.close()

        records = wal_records(tmp_path)
        assert len(records) == 1
        _, log = records[0]
        assert log.atomic
        assert [record.kind for record in log.records] == [
            "insert",
            "delete",
            "update",
        ]
        # Recovery replays the whole write set.
        model.pop(0)
        model[1_000_001] = (3, 4)
        model[1_000_003] = model.pop(2)
        recovered = Database.open(tmp_path)
        try:
            assert canonical_table(recovered.table) == canonical_model(model)
        finally:
            recovered.close()

    def test_abort_logs_nothing(self, tmp_path):
        db, model = transactional_db(tmp_path)
        engine = db.engine
        txn = engine.begin_transaction()
        engine.transactional_insert(txn, 1_000_001, (1, 2))
        engine.transactional_delete(txn, 0)
        engine.abort(txn)
        db.close()
        assert wal_records(tmp_path) == []
        recovered = Database.open(tmp_path)
        try:
            assert canonical_table(recovered.table) == canonical_model(model)
        finally:
            recovered.close()

    def test_conflict_abort_logs_nothing(self, tmp_path):
        db, model = transactional_db(tmp_path)
        engine = db.engine
        first = engine.begin_transaction()
        second = engine.begin_transaction()
        engine.transactional_delete(first, 0)
        engine.transactional_delete(second, 0)
        engine.commit(first)
        with pytest.raises(TransactionConflictError):
            engine.commit(second)
        db.close()
        # Only the winner reached the log; the loser left no trace.
        assert len(wal_records(tmp_path)) == 1
        model.pop(0)
        recovered = Database.open(tmp_path)
        try:
            assert canonical_table(recovered.table) == canonical_model(model)
        finally:
            recovered.close()

    def test_empty_transaction_commits_without_logging(self, tmp_path):
        db, _ = transactional_db(tmp_path)
        txn = db.engine.begin_transaction()
        db.engine.commit(txn)
        db.close()
        assert wal_records(tmp_path) == []


class TestTransactionalCrashRecoveryProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        spec=TXN_SPECS,
        crash_point=st.sampled_from(CRASH_POINTS),
        power_loss=st.booleans(),
        offset=st.integers(1, 4),
    )
    def test_recovery_lands_on_a_whole_transaction_prefix(
        self, spec, crash_point, power_loss, offset
    ):
        with tempfile.TemporaryDirectory() as root:
            crashed, recovered, allowed = run_txn_crash_scenario(
                Path(root), spec, crash_point, power_loss, offset
            )
            assert recovered in allowed
            if not crashed:
                # No crash fired: a clean shutdown must lose nothing.
                assert recovered == allowed[-1]


class TestTransactionalCrashMatrix:
    """Deterministic anchor for the CI crash-point matrix."""

    #: Fixed workload: four multi-write transactions mixing all kinds, so
    #: every crash offset lands somewhere interesting.
    SPEC = [
        [("insert", 0), ("delete", 3), ("update", 7)],
        [("update", 1), ("insert", 2)],
        [("delete", 11), ("insert", 5), ("delete", 4)],
        [("update", 9), ("delete", 19)],
    ]

    @pytest.mark.parametrize("power_loss", [False, True], ids=["kill", "power"])
    @pytest.mark.parametrize("crash_point", CRASH_POINTS)
    def test_every_crash_point_recovers(self, tmp_path, crash_point, power_loss):
        # The manifest is written once per checkpoint and only one
        # checkpoint runs after the injector is armed; every other point
        # fires repeatedly, so the second hit exercises a mid-run crash.
        offset = 1 if crash_point == "snapshot.manifest" else 2
        crashed, recovered, allowed = run_txn_crash_scenario(
            tmp_path, self.SPEC, crash_point, power_loss, offset
        )
        assert crashed, f"crash point {crash_point} never fired"
        assert recovered in allowed
