"""Fault-injected crash recovery: random workloads, every crash point.

The harness drives an oracle model (a plain ``dict`` of ``key -> payload``)
in lockstep with the engine, injects a crash at a named I/O point, then
reopens the log directory and checks the recovered table against the
oracle.  The commit contract under ``fsync="always"`` is:

* every *acknowledged* batch survives recovery, and
* at most the one in-flight batch may additionally survive (its WAL
  record landed before the crash) -- never a partial batch, because a
  batch is one atomic WAL record.

So the recovered state must equal the oracle after ``j`` batches for some
``j`` in ``{acked, applied}``.  Workload keys are unique by construction
(initial keys even, generated keys odd and monotonic), which removes the
duplicate-key delete/update victim ambiguity from the equality check.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.database import Database
from repro.durability.faults import CRASH_POINTS, FaultInjector, InjectedCrash
from repro.durability.manager import DurabilityConfig
from repro.durability.recovery import recover, replay
from repro.durability.wal import scan_segment, segment_first_lsn
from repro.workload.operations import (
    MultiDelete,
    MultiInsert,
    MultiUpdate,
    RangeQuery,
)

OP_KINDS = ("insert", "delete", "update", "read")

#: A workload spec: batches of (op kind, choice index).  The index picks
#: the delete/update victim from the live key set, so specs stay valid
#: whatever state earlier batches left behind.
BATCH_SPECS = st.lists(
    st.lists(
        st.tuples(st.sampled_from(OP_KINDS), st.integers(0, 99)),
        min_size=1,
        max_size=3,
    ),
    min_size=2,
    max_size=5,
)


def payload_for(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def canonical_model(model):
    return sorted((key, a, b) for key, (a, b) in model.items())


def canonical_table(table):
    out = []
    for key in np.sort(table.scan()).tolist():
        for row in table.point_query(key):
            out.append((key, row.payload["a"], row.payload["b"]))
    return sorted(out)


def build_batch(spec_batch, model, next_key):
    """Materialize one batch of operations plus its post-state.

    ``next_key`` is a one-element list used as a mutable counter; fresh
    keys are odd, so they never collide with the even initial keys.
    """
    scratch = dict(model)
    ops = []
    for kind, idx in spec_batch:
        if kind == "insert":
            keys = [next_key[0] + 2 * i for i in range(3)]
            next_key[0] += 6
            rows = payload_for(keys).tolist()
            ops.append(MultiInsert(tuple(keys), tuple(map(tuple, rows))))
            for key, row in zip(keys, rows, strict=True):
                scratch[key] = tuple(row)
        elif kind == "delete":
            live = sorted(scratch)
            key = live[idx % len(live)] if live else 10**9
            ops.append(MultiDelete((key,)))
            scratch.pop(key, None)
        elif kind == "update":
            live = sorted(scratch)
            old = live[idx % len(live)] if live else 10**9
            new = next_key[0]
            next_key[0] += 2
            ops.append(MultiUpdate(((old, new),)))
            if old in scratch:
                # The payload moves with the row, as the table's
                # rowid-preserving update does.
                scratch[new] = scratch.pop(old)
        else:
            ops.append(RangeQuery(0, 1 << 40))
    return ops, scratch


def run_crash_scenario(root, spec, crash_point, power_loss, offset):
    """Run ``spec`` against a durable database, crashing at ``crash_point``.

    Returns ``(crashed, recovered, allowed)``: whether the injected crash
    fired, the recovered canonical state, and the set of oracle states
    recovery is allowed to land on.
    """
    faults = FaultInjector(power_loss=power_loss)
    config = DurabilityConfig(root=root, faults=faults, retry_backoff_s=0.0)
    initial = np.arange(0, 100, 2, dtype=np.int64)
    db = Database.from_rows(
        initial,
        payload_for(initial),
        chunk_size=32,
        payload_names=("a", "b"),
        durability=config,
    )
    model = {
        int(key): tuple(row)
        for key, row in zip(
            initial.tolist(), payload_for(initial).tolist(), strict=True
        )
    }
    prefixes = [canonical_model(model)]
    next_key = [1_000_001]

    # Arm the injector only now: the baseline snapshot above must land.
    faults.crash_at = crash_point
    faults.crash_hit = faults.hits[crash_point] + offset

    acked = 0
    applied = 0
    crashed = False
    for i, spec_batch in enumerate(spec):
        if i == 1:
            # A mid-run checkpoint makes the snapshot crash points
            # reachable; an injected crash aborts it without rotating.
            try:
                db.checkpoint()
            except InjectedCrash:
                crashed = True
                break
        ops, new_model = build_batch(spec_batch, model, next_key)
        try:
            db.engine.execute_batch(ops)
        except InjectedCrash:
            # The batch applied in memory before its WAL append/fsync
            # crashed: its record either landed whole or not at all.
            crashed = True
            model = new_model
            prefixes.append(canonical_model(model))
            applied = acked + 1
            break
        model = new_model
        prefixes.append(canonical_model(model))
        acked += 1
        applied = acked
    if not crashed:
        db.close()

    recovered_db = Database.open(root)
    try:
        recovered = canonical_table(recovered_db.table)
        recovered_db.table.check_invariants()
    finally:
        recovered_db.close()
    allowed = [prefixes[acked], prefixes[applied]]
    return crashed, recovered, allowed


class TestCrashRecoveryProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        spec=BATCH_SPECS,
        crash_point=st.sampled_from(CRASH_POINTS),
        power_loss=st.booleans(),
        offset=st.integers(1, 4),
    )
    def test_recovery_lands_on_an_oracle_prefix(
        self, spec, crash_point, power_loss, offset
    ):
        with tempfile.TemporaryDirectory() as root:
            crashed, recovered, allowed = run_crash_scenario(
                Path(root), spec, crash_point, power_loss, offset
            )
            assert recovered in allowed
            if not crashed:
                # No crash fired: a clean shutdown must lose nothing.
                assert recovered == allowed[-1]

    @settings(max_examples=10, deadline=None)
    @given(spec=BATCH_SPECS)
    def test_replay_prefix_twice_is_a_noop(self, spec):
        with tempfile.TemporaryDirectory() as root:
            root = Path(root)
            initial = np.arange(0, 60, 2, dtype=np.int64)
            db = Database.from_rows(
                initial,
                payload_for(initial),
                chunk_size=32,
                payload_names=("a", "b"),
                durability=root,
            )
            model = {
                int(key): tuple(row)
                for key, row in zip(
                    initial.tolist(), payload_for(initial).tolist(), strict=True
                )
            }
            next_key = [1_000_001]
            for spec_batch in spec:
                ops, model = build_batch(spec_batch, model, next_key)
                db.engine.execute_batch(ops)
            db.close()

            table, report = recover(root)
            before = canonical_table(table)
            assert before == canonical_model(model)
            segments = sorted(
                (root / "wal").glob("wal-*.log"),
                key=lambda p: segment_first_lsn(p.name),
            )
            records = []
            for segment in segments:
                records.extend(scan_segment(segment).records)
            batches, operations, last = replay(
                table, records, after_lsn=report.last_lsn
            )
            assert (batches, operations) == (0, 0)
            assert last == report.last_lsn
            assert canonical_table(table) == before


class TestCrashMatrix:
    """Deterministic anchor for the CI crash-point matrix."""

    #: Fixed workload: inserts, deletes, updates and reads across four
    #: batches, so every crash offset lands somewhere interesting.
    SPEC = [
        [("insert", 0), ("delete", 3)],
        [("update", 7), ("insert", 1)],
        [("delete", 11), ("read", 0), ("insert", 2)],
        [("update", 5), ("delete", 19)],
    ]

    @pytest.mark.parametrize("power_loss", [False, True], ids=["kill", "power"])
    @pytest.mark.parametrize("crash_point", CRASH_POINTS)
    def test_every_crash_point_recovers(self, tmp_path, crash_point, power_loss):
        # The manifest is written once per checkpoint and only one
        # checkpoint runs after the injector is armed; every other point
        # fires repeatedly, so the second hit exercises a mid-run crash.
        offset = 1 if crash_point == "snapshot.manifest" else 2
        crashed, recovered, allowed = run_crash_scenario(
            tmp_path, self.SPEC, crash_point, power_loss, offset
        )
        assert crashed, f"crash point {crash_point} never fired"
        assert recovered in allowed
