"""End-to-end integration tests: plan -> build -> execute -> verify."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import build_hap_engine, run_workload
from repro.core.planner import CasperPlanner
from repro.storage.cost_accounting import constants_for_block_values
from repro.storage.engine import StorageEngine
from repro.storage.layouts import LayoutKind
from repro.workload.hap import HAPConfig, build_table, make_workload
from repro.workload.operations import Delete, Insert, PointQuery, RangeQuery, Update


@pytest.fixture(scope="module")
def config():
    return HAPConfig(num_rows=8_192, chunk_size=2_048, block_values=64)


def reference_execute(keys: set[int], workload) -> list[int]:
    """Plain-Python reference results (point counts / range counts)."""
    answers = []
    for operation in workload:
        if isinstance(operation, PointQuery):
            answers.append(1 if operation.key in keys else 0)
        elif isinstance(operation, RangeQuery):
            answers.append(sum(1 for k in keys if operation.low <= k <= operation.high))
        elif isinstance(operation, Insert):
            keys.add(operation.key)
            answers.append(-1)
        elif isinstance(operation, Delete):
            keys.discard(operation.key)
            answers.append(-1)
        elif isinstance(operation, Update):
            keys.discard(operation.old_key)
            keys.add(operation.new_key)
            answers.append(-1)
    return answers


class TestEndToEnd:
    def test_casper_pipeline_multi_chunk(self, config):
        """The full Casper pipeline: sample -> plan per chunk -> execute."""
        training = make_workload("hybrid_skewed", config, num_operations=400, seed=3)
        planner = CasperPlanner(
            sample_workload=training,
            block_values=config.block_values,
            ghost_fraction=0.005,
            constants=constants_for_block_values(config.block_values),
        )
        table = build_table(config, planner.build_chunk)
        assert table.num_chunks == config.num_rows // config.chunk_size
        assert len(planner.plans) == table.num_chunks
        engine = StorageEngine(table)
        workload = make_workload("hybrid_skewed", config, num_operations=400, seed=11)
        result = run_workload(engine, workload, layout_name="casper")
        assert result.errors == 0
        table.check_invariants()

    @pytest.mark.parametrize(
        "layout",
        [LayoutKind.CASPER, LayoutKind.STATE_OF_ART, LayoutKind.EQUI_GV, LayoutKind.SORTED],
    )
    def test_query_results_match_reference(self, config, layout):
        """Every layout returns the same answers as a plain-Python reference."""
        training = make_workload("hybrid_skewed", config, num_operations=200, seed=3)
        engine = build_hap_engine(
            layout, config, training_workload=training, partitions=8
        )
        workload = make_workload("read_only_uniform", config, num_operations=300, seed=5)
        keys = set((np.arange(config.num_rows) * 2).tolist())
        expected = reference_execute(set(keys), workload)
        for operation, reference in zip(workload, expected):
            outcome = engine.execute(operation)
            if isinstance(operation, PointQuery):
                assert len(outcome.result) == reference
            elif isinstance(operation, RangeQuery) and reference >= 0:
                if outcome.kind == "range_count":
                    assert outcome.result == reference

    def test_mixed_workload_preserves_key_multiset(self, config):
        """After a write-heavy workload the engine's keys match the reference."""
        training = make_workload("update_only_uniform", config, num_operations=200, seed=3)
        engine = build_hap_engine(
            LayoutKind.CASPER, config, training_workload=training, partitions=8,
            ghost_fraction=0.01,
        )
        workload = make_workload(
            "update_only_uniform", config, num_operations=500, seed=23
        )
        keys = set((np.arange(config.num_rows) * 2).tolist())
        reference_execute(keys, workload)
        for operation in workload:
            engine.execute(operation)
        engine.table.check_invariants()
        assert sorted(engine.values().tolist()) == sorted(keys)

    def test_casper_layout_quality_vs_equi(self, config):
        """The optimizer's layout is no worse than equi-width under its own cost model."""
        from repro.core.cost_model import CostModel, boundaries_to_vector
        from repro.core.frequency_model import learn_from_workload

        training = make_workload("hybrid_skewed", config, num_operations=500, seed=3)
        values = np.arange(config.chunk_size, dtype=np.int64) * 2
        model = learn_from_workload(training, values, block_values=config.block_values)
        constants = constants_for_block_values(config.block_values)
        cost_model = CostModel(model, constants)
        from repro.core.dp_solver import solve_dp

        optimal = solve_dp(cost_model)
        num_blocks = model.num_blocks
        equi = boundaries_to_vector(
            num_blocks, np.linspace(num_blocks // 8, num_blocks, 8).astype(int)
        )
        assert optimal.cost <= cost_model.total_cost(equi) + 1e-6
