"""Example: crash a durable database mid-batch and recover it.

The durability layer write-ahead logs every batch of deltas before its
results return, checkpoints chunk snapshots, and recovers the stored
state as *latest snapshot + WAL replay*.  This demo makes that concrete:

1. build a durable database (the load takes a baseline snapshot),
2. run write batches in lockstep with an in-process oracle, arming a
   fault injector to "kill the process" at a named I/O crash point --
   optionally as a power loss, which also drops the un-fsynced tail,
3. reopen the log directory with ``Database.open`` and verify the
   recovered table equals an oracle prefix no shorter than the
   acknowledged batches.

Run with::

    python examples/crash_recovery.py --crash-at wal.append.partial
    python examples/crash_recovery.py --crash-at wal.fsync --power-loss
    python examples/crash_recovery.py --list-crash-points

Exits non-zero when recovery lands on a state the commit contract does
not allow, so the CI crash matrix can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.api.database import Database
from repro.durability.faults import CRASH_POINTS, FaultInjector, InjectedCrash
from repro.durability.manager import DurabilityConfig
from repro.workload.operations import MultiDelete, MultiInsert, MultiUpdate


def payload_for(keys: np.ndarray) -> np.ndarray:
    """Deterministic payload = f(key): recovery checks become order-free."""
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def canonical_model(model: dict) -> list:
    return sorted((key, a, b) for key, (a, b) in model.items())


def canonical_table(table) -> list:
    out = []
    for key in np.sort(table.scan()).tolist():
        for row in table.point_query(key):
            out.append((key, row.payload["a"], row.payload["b"]))
    return sorted(out)


def build_batches(model: dict, rounds: int) -> list:
    """Mixed write batches plus the oracle state after each one."""
    batches = []
    state = dict(model)
    next_key = 1_000_001  # odd: never collides with the even initial keys
    for round_no in range(rounds):
        fresh = [next_key + 2 * i for i in range(8)]
        next_key += 16
        rows = payload_for(np.array(fresh)).tolist()
        live = sorted(state)
        victim = live[(round_no * 13) % len(live)]
        moved = live[(round_no * 7 + 3) % len(live)]
        target = next_key
        next_key += 2
        ops = [
            MultiInsert(tuple(fresh), tuple(map(tuple, rows))),
            MultiDelete((victim,)),
            MultiUpdate(((moved, target),)),
        ]
        for key, row in zip(fresh, rows, strict=True):
            state[key] = tuple(row)
        state.pop(victim, None)
        if moved in state and moved != victim:
            state[target] = state.pop(moved)
        batches.append((ops, dict(state)))
    return batches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--crash-at",
        default="wal.append.partial",
        choices=CRASH_POINTS,
        help="named I/O point at which the injected crash fires",
    )
    parser.add_argument(
        "--power-loss",
        action="store_true",
        help="also drop the un-fsynced WAL tail (power cut, not just a kill)",
    )
    parser.add_argument(
        "--rows", type=int, default=400, help="initial table size"
    )
    parser.add_argument(
        "--list-crash-points", action="store_true", help="print points and exit"
    )
    args = parser.parse_args(argv)
    if args.list_crash_points:
        print("\n".join(CRASH_POINTS))
        return 0

    with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
        root = Path(tmp)
        faults = FaultInjector(power_loss=args.power_loss)
        config = DurabilityConfig(root=root, faults=faults, retry_backoff_s=0.0)
        initial = np.arange(0, 2 * args.rows, 2, dtype=np.int64)
        db = Database.from_rows(
            initial,
            payload_for(initial),
            chunk_size=128,
            payload_names=("a", "b"),
            durability=config,
        )
        model = {
            int(key): tuple(row)
            for key, row in zip(
                initial.tolist(), payload_for(initial).tolist(), strict=True
            )
        }
        print(f"loaded {db.table.num_rows} rows; baseline snapshot taken")

        # Arm the injector only now, so the baseline snapshot lands; the
        # second hit of the point crashes mid-run (the manifest is hit
        # once per checkpoint, so its first hit is the mid-run one).
        faults.crash_at = args.crash_at
        faults.crash_hit = faults.hits[args.crash_at] + (
            1 if args.crash_at == "snapshot.manifest" else 2
        )
        print(f"armed crash point {args.crash_at!r} (power_loss={args.power_loss})")

        prefixes = [canonical_model(model)]
        acked = 0
        applied = 0
        crashed = False
        for i, (ops, state) in enumerate(build_batches(model, rounds=6)):
            if i == 2:
                try:
                    info = db.checkpoint()
                    print(f"checkpoint at lsn {info.lsn} ({info.rows} rows)")
                except InjectedCrash as crash:
                    print(f"CRASH during checkpoint at {crash.point!r}")
                    crashed = True
                    break
            try:
                result = db.engine.execute_batch(ops)
            except InjectedCrash as crash:
                print(f"CRASH during batch {i} at {crash.point!r}")
                crashed = True
                prefixes.append(canonical_model(state))
                applied = acked + 1
                break
            prefixes.append(canonical_model(state))
            acked += 1
            applied = acked
            print(f"batch {i} acknowledged at lsn {result.lsn}")
        if not crashed:
            print("crash point never fired; closing cleanly")
            db.close()

        reopened = Database.open(root)
        report = reopened.recovery
        print(
            f"recovered: snapshot lsn {report.base_lsn}, replayed "
            f"{report.batches_replayed} batches to lsn {report.last_lsn}, "
            f"truncated {report.truncated_bytes} torn bytes"
        )
        recovered = canonical_table(reopened.table)
        reopened.table.check_invariants()
        reopened.close()

        allowed = {acked: prefixes[acked], applied: prefixes[applied]}
        matches = [j for j, state in allowed.items() if state == recovered]
        if not matches:
            print(
                f"FAIL: recovered {len(recovered)} rows, equal to no oracle "
                f"prefix in {sorted(allowed)} (acked={acked})"
            )
            return 1
        print(
            f"OK: recovered state equals the oracle after {matches[0]} "
            f"batches (acknowledged: {acked})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
