"""Quickstart: tailor a column layout to a hybrid workload with Casper.

This example walks through the full pipeline of the paper on a small table:

1. load a table whose key column starts out unorganised,
2. collect a representative workload sample,
3. let the planner learn the Frequency Model, solve the layout problem and
   allocate ghost values,
4. run the workload against the tailored layout and against the
   state-of-the-art delta-store design, and compare.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.bench.harness import build_hap_engine, run_workload
from repro.bench.reporting import format_table
from repro.storage.layouts import LayoutKind
from repro.workload.hap import HAPConfig, make_workload


def main() -> None:
    # A 64K-row HAP table with 16KB blocks scaled down to 4KB (1024 values).
    config = HAPConfig(num_rows=65_536, chunk_size=65_536, block_values=1_024)

    # The offline workload sample the planner learns from (Fig. 10, step A)
    # and a *different* sample used for evaluation.
    training = make_workload("hybrid_skewed", config, num_operations=2_000, seed=7)
    evaluation = make_workload("hybrid_skewed", config, num_operations=2_000, seed=42)

    rows = []
    for layout in (LayoutKind.CASPER, LayoutKind.STATE_OF_ART, LayoutKind.SORTED):
        engine = build_hap_engine(
            layout,
            config,
            training_workload=training,
            ghost_fraction=0.001,
        )
        result = run_workload(engine, evaluation, layout_name=layout.value)
        rows.append(
            (
                layout.value,
                result.mean_latency_ns.get("point_query", 0.0) / 1000.0,
                result.mean_latency_ns.get("insert", 0.0) / 1000.0,
                result.throughput_ops / 1000.0,
            )
        )

    print("Hybrid workload (Q1 49%, Q4 50%, Q6 1%), skewed accesses\n")
    print(
        format_table(
            ("layout", "point query (us)", "insert (us)", "throughput (Kops)"), rows
        )
    )
    casper, state_of_art = rows[0][3], rows[1][3]
    print(f"\nCasper vs state-of-the-art delta store: {casper / state_of_art:.2f}x")


if __name__ == "__main__":
    main()
