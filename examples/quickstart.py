"""Quickstart: tailor a column layout to a hybrid workload with Casper.

This example walks the full pipeline of the paper through the session API:

1. declare the data and the workload to tune for -- ``Database.plan_for``
   learns the Frequency Model, solves the layout problem and allocates
   ghost values while the table loads (Fig. 10, steps A-C),
2. open a ``Session`` with an adaptive execution policy and run the
   evaluation workload against the tailored layout and two baselines,
3. let a ``ReorgPolicy``-equipped session absorb a *drifted* workload
   phase: drift is detected per chunk, a candidate layout is solved for
   the observed operation mix, and the chunk is rebuilt in place only when
   the modeled savings beat the rebuild charge.

Run with::

    python examples/quickstart.py

Migrating from the pre-session API: ``build_hap_engine(...)`` +
``StorageEngine.execute`` become ``Database.plan_for(...)`` /
``Database.from_rows(...)`` + ``db.session(...).execute``; the engine stays
reachable as ``db.engine`` for code that still wants the low-level entry
points.
"""

from __future__ import annotations

import numpy as np

from repro.api import AdaptivePolicy, Database, ReorgPolicy
from repro.bench.reporting import format_table
from repro.storage.layouts import LayoutKind
from repro.workload.distributions import EarlySkewSampler
from repro.workload.generator import WorkloadGenerator, WorkloadMix
from repro.workload.hap import HAPConfig, generate_keys, generate_payload, make_workload


def compare_layouts() -> None:
    """Casper vs. baselines on the paper's hybrid skewed profile."""
    # A 64K-row HAP table with 16KB blocks scaled down to 4KB (1024 values).
    config = HAPConfig(num_rows=65_536, chunk_size=65_536, block_values=1_024)
    keys, payload = generate_keys(config), generate_payload(config)

    # The offline sample the planner learns from (Fig. 10, step A) and a
    # *different* sample used for evaluation.
    training = make_workload("hybrid_skewed", config, num_operations=2_000, seed=7)
    evaluation = make_workload("hybrid_skewed", config, num_operations=2_000, seed=42)

    rows = []
    throughputs = []
    for label, build in (
        (
            "casper",
            lambda: Database.plan_for(
                training,
                keys,
                payload,
                chunk_size=config.chunk_size,
                block_values=config.block_values,
                ghost_fraction=0.001,
            ),
        ),
        (
            "state-of-the-art",
            lambda: Database.from_rows(
                keys,
                payload,
                layout=LayoutKind.STATE_OF_ART,
                chunk_size=config.chunk_size,
                block_values=config.block_values,
            ),
        ),
        (
            "sorted",
            lambda: Database.from_rows(
                keys,
                payload,
                layout=LayoutKind.SORTED,
                chunk_size=config.chunk_size,
                block_values=config.block_values,
            ),
        ),
    ):
        db = build()
        with db.session(execution=AdaptivePolicy()) as session:
            session.execute(list(evaluation))
        report = session.report()
        throughputs.append(report.throughput_ops)
        # Per-operation simulated latency is deterministic and comparable
        # across layouts (per-*batch* means are not: the adaptive policy's
        # slice segmentation differs per run).
        rows.append(
            (
                label,
                report.simulated_ns_total / report.operations / 1_000.0,
                report.throughput_ops / 1_000.0,
            )
        )

    print("Hybrid workload (Q1 49%, Q4 50%, Q6 1%), skewed accesses\n")
    print(
        format_table(
            ("layout", "mean op (us, simulated)", "throughput (Kops)"),
            rows,
        )
    )
    print(
        "\nCasper vs state-of-the-art delta store: "
        f"{throughputs[0] / throughputs[1]:.2f}x"
    )


def drifting_session() -> None:
    """The automatic reorganization lifecycle on a drifting workload."""
    num_rows = 65_536
    keys = np.arange(num_rows, dtype=np.int64) * 2
    generator = WorkloadGenerator(
        keys, domain_low=0, domain_high=2 * num_rows - 2, seed=3
    )
    insert_heavy = WorkloadMix(name="insert-heavy", q4_insert=0.9, q1_point=0.1)
    point_heavy = WorkloadMix(
        name="point-heavy",
        q1_point=0.97,
        q2_range_count=0.03,
        read_sampler=EarlySkewSampler(),
    )

    # Train for the insert-heavy phase, then serve the drifted point-heavy
    # phase in rounds; the session replans drifted chunks between rounds.
    training = generator.generate(insert_heavy, 1_500)
    drifted = list(
        WorkloadGenerator(
            keys, domain_low=0, domain_high=2 * num_rows - 2, seed=9
        ).generate(point_heavy, 6_000)
    )

    def serve(reorg: ReorgPolicy | None) -> float:
        db = Database.plan_for(
            training, keys, chunk_size=16_384, block_values=1_024
        )
        with db.session(execution=AdaptivePolicy(), reorg=reorg) as session:
            for start in range(0, len(drifted), 1_000):
                session.execute(drifted[start : start + 1_000])
        report = session.report()
        for decision in report.reorg_decisions:
            if decision.replanned:
                print(
                    f"  replanned chunk {decision.chunk_index}: "
                    f"drift {decision.drift:.2f}, modeled savings "
                    f"{decision.modeled_savings_ns / 1e3:.0f}us vs rebuild "
                    f"{decision.rebuild_cost_ns / 1e3:.0f}us"
                )
        return report.simulated_seconds

    print("\nDrifting workload (insert-heavy training -> point-heavy phase)")
    frozen = serve(None)
    adaptive = serve(ReorgPolicy(drift_threshold=0.25, min_chunk_operations=256))
    print(
        f"simulated time without reorg {frozen * 1e3:.2f}ms, "
        f"with cost-gated auto-replan {adaptive * 1e3:.2f}ms "
        f"({frozen / adaptive:.2f}x)"
    )


def main() -> None:
    compare_layouts()
    drifting_session()


if __name__ == "__main__":
    main()
