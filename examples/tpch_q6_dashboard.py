"""Example: an HTAP dashboard over TPC-H-like lineitem data (Figure 1 scenario).

An analytics dashboard repeatedly runs TPC-H Q6-style revenue aggregations
over a lineitem table that is simultaneously ingesting new orders and serving
point lookups.  The example compares the three designs of the paper's Figure 1
and prints a per-query breakdown plus overall throughput.

Run with::

    python examples/tpch_q6_dashboard.py
"""

from __future__ import annotations

from repro.bench.experiments import fig1


def main() -> None:
    config = fig1.Figure1Config(
        num_rows=131_072, block_values=1_024, num_operations=2_000
    )
    results = fig1.run(config)
    print(fig1.report(results))
    print(
        "\nThe vanilla column-store has no write optimization, so every point\n"
        "query scans the whole chunk.  The delta store fixes ingestion but\n"
        "pays for continuously integrating the buffer and for scanning it on\n"
        "every read.  Casper's workload-tailored partitions give it the reads\n"
        "of a sorted column and the writes of a buffered one."
    )


if __name__ == "__main__":
    main()
