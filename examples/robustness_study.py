"""Example: how robust is a tailored layout to workload drift? (Section 7.5)

The layout is trained on a workload whose point queries target recent data
and whose inserts target old data.  The actual workload then drifts: part of
the read mass becomes write mass, and the hot region rotates across the
domain.  The example reports the latency penalty of keeping the trained
layout, normalized to the unperturbed workload -- the paper's Figure 16.

Run with::

    python examples/robustness_study.py
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.cost_model import CostModel
from repro.core.dp_solver import solve_dp
from repro.core.frequency_model import FrequencyModel
from repro.core.robustness import evaluate_robustness, mass_shift, rotational_shift
from repro.storage.cost_accounting import constants_for_block_values
from repro.workload.distributions import EarlySkewSampler, RecentSkewSampler, histogram_of


def build_training_model(num_blocks: int = 256, operations: int = 10_000) -> FrequencyModel:
    """Half point queries on recent data, half inserts on old data."""
    reads = histogram_of(RecentSkewSampler(exponent=4.0), bins=num_blocks)
    writes = histogram_of(EarlySkewSampler(exponent=4.0), bins=num_blocks)
    model = FrequencyModel(num_blocks)
    model.pq[:] = reads / reads.sum() * operations / 2
    model.ins[:] = writes / writes.sum() * operations / 2
    return model


def main() -> None:
    constants = constants_for_block_values(1_024)
    training = build_training_model()
    trained = solve_dp(CostModel(training, constants))
    baseline = CostModel(training, constants).total_cost(trained.vector)
    print(
        f"Trained layout: {trained.num_partitions} partitions "
        f"(baseline workload cost {baseline / 1e6:.2f} ms)\n"
    )

    rows = []
    for mass in (-0.25, 0.0, 0.25):
        for rotation in (0.0, 0.05, 0.10, 0.20, 0.35, 0.50):
            drifted = rotational_shift(mass_shift(training, mass), rotation)
            cost = CostModel(drifted, constants).total_cost(trained.vector)
            rows.append((f"{mass:+.0%}", f"{rotation:.0%}", cost / baseline))
    print(
        format_table(
            ("mass shift", "rotational shift", "normalized latency"), rows
        )
    )

    # How much of the gap could re-optimizing recover?  Compare against the
    # oracle layout for the most drifted workload.
    points = evaluate_robustness(
        training, mass_shifts=[0.25], rotational_shifts=[0.5], constants=constants
    )
    worst = points[-1]
    print(
        f"\nAt +25% mass shift and 50% rotation the trained layout is "
        f"{worst.normalized_latency:.2f}x slower than re-optimizing -- "
        "the cliff the paper suggests addressing with robust optimization."
    )


if __name__ == "__main__":
    main()
