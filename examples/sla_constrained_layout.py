"""Example: meeting an insert SLA with a constrained layout (Section 5).

A dashboard application needs every insert to complete within a latency
budget, but still wants the best possible read performance.  This example
optimizes the same workload under progressively tighter insert SLAs and shows
how the layout (number of partitions) and the resulting latencies change --
the behaviour of the paper's Figure 15.

Run with::

    python examples/sla_constrained_layout.py
"""

from __future__ import annotations

from repro.bench.harness import build_hap_engine, run_workload
from repro.bench.reporting import format_table
from repro.core.constraints import SLAConstraints
from repro.storage.layouts import LayoutKind
from repro.workload.hap import HAPConfig, make_workload


def main() -> None:
    config = HAPConfig(num_rows=65_536, chunk_size=65_536, block_values=1_024)
    training = make_workload("sla_hybrid", config, num_operations=2_000, seed=7)
    evaluation = make_workload("sla_hybrid", config, num_operations=2_000, seed=42)

    rows = []
    for sla_us in (None, 10.0, 5.0, 2.0):
        sla = SLAConstraints(update_sla_ns=sla_us * 1_000) if sla_us else None
        engine = build_hap_engine(
            LayoutKind.CASPER,
            config,
            training_workload=training,
            ghost_fraction=0.001,
            sla=sla,
        )
        partitions = engine.table.chunks[0].num_partitions
        result = run_workload(engine, evaluation, layout_name="casper")
        rows.append(
            (
                "none" if sla_us is None else f"{sla_us:.1f}",
                partitions,
                result.mean_latency_ns.get("point_query", 0.0) / 1000.0,
                result.mean_latency_ns.get("insert", 0.0) / 1000.0,
                result.p999_latency_ns.get("insert", 0.0) / 1000.0,
                result.throughput_ops / 1000.0,
            )
        )

    print("Hybrid workload (Q1 89%, Q4 10%, Q6 1%) under insert SLAs\n")
    print(
        format_table(
            (
                "insert SLA (us)",
                "partitions",
                "Q1 latency (us)",
                "Q4 latency (us)",
                "Q4 p99.9 (us)",
                "throughput (Kops)",
            ),
            rows,
        )
    )
    print(
        "\nTighter SLAs force fewer partitions: the worst-case ripple shortens "
        "(p99.9 insert latency tracks the SLA) while throughput barely moves."
    )


if __name__ == "__main__":
    main()
