"""Example: snapshot-isolation transactions and compression-aware layouts.

Demonstrates the two supporting subsystems of Section 6:

* transactions (Section 6.1) -- two concurrent writers touch the same key;
  the first committer wins and the second rolls back, while a long analytical
  query keeps reading a consistent snapshot; and
* compression (Section 6.2) -- fine partitioning shrinks per-partition value
  ranges, improving frame-of-reference compression.

Run with::

    python examples/transactions_and_compression.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import format_table
from repro.storage.column import equal_width_boundaries
from repro.storage.compression import FrameOfReferenceCodec
from repro.storage.engine import StorageEngine
from repro.storage.errors import TransactionConflictError
from repro.storage.layouts import LayoutKind, LayoutSpec
from repro.storage.table import Table, layout_chunk_builder


def transactions_demo() -> None:
    keys = np.arange(10_000, dtype=np.int64) * 2
    payload = np.arange(10_000, dtype=np.int64).reshape(-1, 1)
    spec = LayoutSpec(kind=LayoutKind.EQUI_GV, partitions=16, block_values=1_024)
    table = Table(keys, payload, chunk_builder=layout_chunk_builder(spec))
    engine = StorageEngine(table, enable_transactions=True)

    print("== Snapshot isolation (first committer wins) ==")
    analytical_before = engine.range_count(0, 19_998).result
    writer_a = engine.begin_transaction()
    writer_b = engine.begin_transaction()
    engine.transactional_update(writer_a, 40, 41)
    engine.transactional_delete(writer_b, 40)
    engine.commit(writer_a)
    try:
        engine.commit(writer_b)
    except TransactionConflictError:
        print("writer B aborted: key 40 was already updated by writer A")
    analytical_after = engine.range_count(0, 19_998).result
    print(f"analytical row count before/after: {analytical_before} / {analytical_after}")
    print(f"committed={engine.transactions.committed} aborted={engine.transactions.aborted}\n")


def compression_demo() -> None:
    print("== Partitioning improves frame-of-reference compression ==")
    rng = np.random.default_rng(3)
    values = np.sort(rng.integers(0, 2**28, 131_072))
    codec = FrameOfReferenceCodec()
    rows = []
    for partitions in (1, 16, 128, 1_024):
        boundaries = equal_width_boundaries(values.shape[0], partitions)
        stats = codec.partitioned_stats(values, boundaries)
        rows.append((partitions, stats.ratio))
    print(format_table(("partitions", "compression ratio"), rows))
    print(
        "\nSmaller partitions cover smaller value ranges, so offsets need fewer\n"
        "bits -- the synergy between partitioning and compression of Section 6.2."
    )


def main() -> None:
    transactions_demo()
    compression_demo()


if __name__ == "__main__":
    main()
