"""Example: a follower *process* tails a live primary over the WAL.

Two real OS processes share one log directory:

* the **parent** is the primary: it serves a watermark endpoint on a
  local socket (:class:`PrimaryServer`), ingests write batches, takes a
  mid-run checkpoint (so the follower crosses a segment-rotation
  handoff), then writes a ``PRIMARY_DONE`` marker with its final durable
  watermark and a content digest;
* the **child** (this same file, re-executed with ``--follower-worker``)
  is the follower: it bootstraps from the latest snapshot, connects a
  :class:`RemotePrimary` to the socket, tails the growing WAL while
  printing its lag over time, and -- once the primary is done -- verifies
  its replica digest against the primary's at the final watermark.

Exits non-zero if the follower cannot reach the final watermark or its
state digest differs there, so CI can gate on oracle equality across a
process boundary.

Run with::

    python examples/follower_catchup.py
    python examples/follower_catchup.py --batches 64 --rows-per-batch 256
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api.database import Database
from repro.replication import Follower, Primary, PrimaryServer, RemotePrimary
from repro.workload.operations import MultiDelete, MultiInsert

DONE_MARKER = "PRIMARY_DONE.json"


def payload_for(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys % 7, (keys * 3) % 11], axis=1)


def digest_table(table) -> str:
    """Order-free content digest of the logical row multiset."""
    rows = []
    for key in np.sort(table.scan()).tolist():
        for row in table.point_query(key):
            rows.append((key, row.payload["a"], row.payload["b"]))
    blob = json.dumps(sorted(rows)).encode()
    return hashlib.sha256(blob).hexdigest()


# --------------------------------------------------------------------- #
# Primary (parent process)
# --------------------------------------------------------------------- #


def run_primary(root: Path, batches: int, rows_per_batch: int) -> int:
    initial = np.arange(0, 20_000, 2, dtype=np.int64)
    db = Database.from_rows(
        initial,
        payload_for(initial),
        chunk_size=2_048,
        payload_names=("a", "b"),
        durability=root,
    )
    server = PrimaryServer(Primary(db.durability)).start()
    host, port = server.address
    print(f"[primary] log at {root}, endpoint on {host}:{port}")

    worker = subprocess.Popen(
        [
            sys.executable,
            __file__,
            "--follower-worker",
            str(root),
            "--endpoint",
            f"{host}:{port}",
        ]
    )
    try:
        # Wait for the follower's registration pin before ingesting, so
        # the demo tail spans the whole run (including the rotation).
        waited = time.time() + 30
        while time.time() < waited and not db.durability.pins():
            time.sleep(0.01)
        print(f"[primary] follower registered: {db.durability.pins()}")
        next_key = 1_000_001
        recent: list[int] = []
        for batch_no in range(batches):
            fresh = [next_key + 2 * i for i in range(rows_per_batch)]
            next_key += 2 * rows_per_batch
            ops = [
                MultiInsert(
                    tuple(fresh),
                    tuple(map(tuple, payload_for(fresh).tolist())),
                )
            ]
            if batch_no % 4 == 3 and recent:
                ops.append(MultiDelete(tuple(recent[: rows_per_batch // 4])))
                recent = recent[rows_per_batch // 4 :]
            recent.extend(fresh)
            db.engine.execute_batch(ops)
            if batch_no == batches // 2:
                info = db.checkpoint()  # forces a rotation handoff mid-tail
                print(f"[primary] checkpoint at lsn {info.lsn} (segment rotated)")
            time.sleep(0.002)  # leave the follower room to interleave

        final_lsn = db.sync()
        marker = {
            "final_lsn": final_lsn,
            "digest": digest_table(db.table),
            "rows": int(db.num_rows),
        }
        (root / DONE_MARKER).write_text(json.dumps(marker))
        print(
            f"[primary] done: {batches} batches, durable lsn {final_lsn}, "
            f"{db.num_rows} rows, digest {marker['digest'][:12]}..."
        )
        returncode = worker.wait(timeout=120)
    finally:
        if worker.poll() is None:
            worker.kill()
        server.stop()
        db.close()
    if returncode != 0:
        print(f"[primary] FOLLOWER FAILED (exit {returncode})")
        return returncode
    print("[primary] follower verified oracle equality at the final watermark")
    return 0


# --------------------------------------------------------------------- #
# Follower (child process)
# --------------------------------------------------------------------- #


def run_follower(root: Path, endpoint: str) -> int:
    host, port = endpoint.rsplit(":", 1)
    follower = Follower(
        root,
        primary=RemotePrimary((host, int(port))),
        follower_id="example-follower",
        poll_interval=0.005,
    )
    print(
        f"[follower] bootstrapped from snapshot lsn {follower.snapshot_lsn}, "
        f"{follower.table.num_rows} rows"
    )
    follower.start()

    deadline = time.time() + 90
    last_print = 0.0
    marker = None
    while time.time() < deadline:
        now = time.time()
        if now - last_print >= 0.05:
            print(
                f"[follower] applied lsn {follower.applied_lsn:>4}  "
                f"lag {follower.lag_lsn:>3}  "
                f"({follower.batches_applied} batches, "
                f"{follower.operations_applied} ops)"
            )
            last_print = now
        marker_path = root / DONE_MARKER
        if marker_path.exists():
            marker = json.loads(marker_path.read_text())
            if follower.applied_lsn >= marker["final_lsn"]:
                break
        time.sleep(0.01)
    follower.stop()

    if marker is None:
        print("[follower] FAIL: primary never published its done marker")
        return 1
    if follower.applied_lsn < marker["final_lsn"]:
        print(
            f"[follower] FAIL: stuck at lsn {follower.applied_lsn} < "
            f"final watermark {marker['final_lsn']}"
        )
        return 1
    digest = digest_table(follower.table)
    follower.table.check_invariants()
    follower.close()
    if digest != marker["digest"]:
        print(
            f"[follower] FAIL: digest mismatch at lsn {marker['final_lsn']}: "
            f"{digest[:12]}... != {marker['digest'][:12]}..."
        )
        return 1
    print(
        f"[follower] caught up: lsn {follower.applied_lsn}, "
        f"{follower.table.num_rows} rows, digest matches the primary"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=48)
    parser.add_argument("--rows-per-batch", type=int, default=128)
    parser.add_argument(
        "--follower-worker",
        metavar="ROOT",
        help="internal: run as the follower child process on this log dir",
    )
    parser.add_argument("--endpoint", help="internal: primary host:port")
    args = parser.parse_args()

    if args.follower_worker:
        return run_follower(Path(args.follower_worker), args.endpoint)
    with tempfile.TemporaryDirectory(prefix="repro-follower-demo-") as tmp:
        return run_primary(Path(tmp), args.batches, args.rows_per_batch)


if __name__ == "__main__":
    sys.exit(main())
