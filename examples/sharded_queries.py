"""Example: one logical database fanned out across worker processes.

Loads a duplicate-heavy table into a 4-shard cluster
(:meth:`Database.sharded` spawns one worker process per shard), runs the
full operation surface through the sharded session -- batched reads that
fan out and merge, writes that commit through per-shard WALs, a
cross-shard key update that barriers and moves a row between processes
-- and checks every result against a single-process oracle replaying the
same sequence.  It then kills one worker mid-flight and reopens the
cluster from the per-shard durability roots to show crash recovery.

Exits non-zero on any oracle mismatch, so CI can gate on serial
equivalence across process boundaries.

Run with::

    python examples/sharded_queries.py
    python examples/sharded_queries.py --rows 50000 --shards 2
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.api.database import Database
from repro.sharding import ShardedDatabase, WorkerDiedError
from repro.storage.layouts import LayoutKind
from repro.workload.operations import (
    Aggregate,
    MultiDelete,
    MultiInsert,
    MultiPointQuery,
    MultiRangeCount,
    PointQuery,
    RangeQuery,
    Update,
)


def payload_for(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack([keys * 7 + 1, keys % 13], axis=1)


def build_workload(rng, key_domain: int) -> list:
    ops = [
        RangeQuery(low=0, high=key_domain),
        RangeQuery(
            low=key_domain // 4,
            high=key_domain // 2,
            aggregate=Aggregate.SUM,
        ),
        MultiPointQuery(
            keys=tuple(int(k) for k in rng.integers(0, key_domain, 64))
        ),
        MultiRangeCount(
            bounds=tuple(
                (int(lo), int(lo) + key_domain // 50)
                for lo in rng.integers(0, key_domain, 32)
            )
        ),
    ]
    fresh = [key_domain + 2 * i for i in range(128)]
    ops.append(
        MultiInsert(
            keys=tuple(fresh),
            payloads=tuple(map(tuple, payload_for(fresh).tolist())),
        )
    )
    ops.append(
        MultiDelete(keys=tuple(int(k) for k in rng.integers(0, key_domain, 64)))
    )
    ops.append(RangeQuery(low=0, high=2 * key_domain + 300))
    return ops


def normalize(result):
    if isinstance(result, np.ndarray):
        return result.tolist()
    if isinstance(result, list):
        if result and isinstance(result[0], list):
            return [normalize(rows) for rows in result]
        return sorted(
            (row.key, tuple(sorted(row.payload.items()))) for row in result
        )
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args()

    rng = np.random.default_rng(11)
    key_domain = args.rows // 2  # every key ~2 copies: duplicates matter
    keys = rng.integers(0, key_domain, args.rows).astype(np.int64)
    workload = build_workload(rng, key_domain)

    oracle = Database.from_rows(
        keys,
        payload_for(keys),
        layout=LayoutKind("equi"),
        partitions=16,
        payload_names=["a", "b"],
    )
    with oracle.session() as session:
        want = session.execute(list(workload))

    mismatches = 0
    with tempfile.TemporaryDirectory(prefix="repro-sharded-") as tmp:
        root = Path(tmp) / "db"
        database = Database.sharded(
            keys,
            payload_for(keys),
            n_shards=args.shards,
            partitions=16,
            payload_names=["a", "b"],
            durability=root,
            fsync="os",
        )
        print(
            f"{args.rows} rows across {args.shards} worker processes; "
            f"fences at {database.shard_map.bounds[:-1].tolist()}"
        )
        with database.session() as session:
            got = session.execute(list(workload))
        for index, (theirs, ours) in enumerate(
            zip(want.results, got.results, strict=True)
        ):
            op = workload[index]
            if isinstance(op, MultiInsert):
                equal = np.asarray(ours).shape == np.asarray(theirs).shape
            else:
                equal = normalize(ours) == normalize(theirs)
            status = "==" if equal else "MISMATCH"
            mismatches += not equal
            print(f"  [{status}] {type(op).__name__}")
        if got.errors != want.errors:
            mismatches += 1
            print(f"  [MISMATCH] errors: {got.errors} != {want.errors}")

        # A cross-shard move: take from the owning worker, insert on the
        # other, then both sides observe the row where it landed.
        moved_from = int(keys[0])
        moved_to = 2 * key_domain + 999  # routes to the last shard
        with database.session() as session:
            result = session.execute(
                [
                    Update(old_key=moved_from, new_key=moved_to),
                    PointQuery(key=moved_to),
                ]
            )
        landed = result.results[1]
        print(
            f"cross-shard move {moved_from} -> {moved_to}: "
            f"{len(landed)} row(s) at the target shard"
        )
        if not landed:
            mismatches += 1

        stats = database.stats()
        for shard, stat in sorted(stats.items()):
            print(
                f"  shard {shard}: {stat['rows']} rows, "
                f"{stat['chunks']} chunks, {stat['violations']} violations"
            )
        if any(stat["violations"] for stat in stats.values()):
            mismatches += 1
        expected_rows = database.num_rows
        database.sync()

        # Crash one worker, then recover the whole cluster from the
        # per-shard WALs -- the logical row multiset must survive.
        database.kill(0)
        try:
            with database.session() as session:
                session.execute([PointQuery(key=moved_from)])
            print("expected the killed shard to fail the batch")
            mismatches += 1
        except WorkerDiedError as exc:
            print(f"killed worker detected: {exc}")
        database.close()

        recovered = ShardedDatabase.open(root)
        with recovered.session() as session:
            total = session.execute(
                RangeQuery(low=-(2**62), high=2**62)
            ).results[0]
        print(f"recovered {total} rows (expected {expected_rows})")
        if total != expected_rows:
            mismatches += 1
        recovered.close()

    print("oracle equality:", "OK" if not mismatches else "FAILED")
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
